// The live telemetry plane end to end: the net/http server itself (parsing,
// dispatch, error statuses, shutdown), every obs/telemetry_server endpoint
// exercised through a real loopback socket, and the scrape-safety
// guarantees (snapshot consistency under concurrent writers, scrapes during
// a parallel_for training region). Fixtures are named TelemetryTest /
// HttpServerTest / SnapshotConsistencyTest so the tsan preset's filter picks
// them up (CMakePresets.json).
#include "obs/telemetry_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "net/http.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/parallel.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace {

using namespace agua;
using namespace agua::obs;

net::HttpClientResponse get(const TelemetryServer& server, const std::string& target) {
  net::HttpClientResponse response;
  EXPECT_TRUE(net::http_get("127.0.0.1", server.port(), target, response))
      << "GET " << target << " failed";
  return response;
}

std::vector<std::string> lines_of(const std::string& body) {
  std::vector<std::string> out;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

/// Process-wide obs state leaks between tests; start clean and recording.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    set_trace_enabled(false);
    clear_spans();
    event_log().clear();
    event_log().set_enabled(true);
    reset_monitors();
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    event_log().set_enabled(false);
    set_trace_enabled(false);
    reset_monitors();
  }
};

using HttpServerTest = TelemetryTest;
using SnapshotConsistencyTest = TelemetryTest;

TEST_F(TelemetryTest, StartsOnEphemeralPortAndStops) {
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.url(), "http://127.0.0.1:" + std::to_string(server.port()));
  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent and the destructor tolerates an already-stopped server.
  server.stop();
}

TEST_F(TelemetryTest, MetricsEndpointServesPrometheus) {
  MetricsRegistry::instance().counter("agua.test.requests").add(3);
  MetricsRegistry::instance().histogram("agua.test.latency").record(0.25);

  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse response = get(server, "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(response.body.find("# HELP agua_test_requests"), std::string::npos);
  EXPECT_NE(response.body.find("# TYPE agua_test_requests counter\n"), std::string::npos);
  EXPECT_NE(response.body.find("agua_test_requests 3\n"), std::string::npos);
  EXPECT_NE(response.body.find("agua_test_latency_count 1\n"), std::string::npos);
  // The server counts itself: a second scrape sees the first one's request.
  const net::HttpClientResponse again = get(server, "/metrics");
  EXPECT_NE(again.body.find("agua_telemetry_requests"), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonEndpointEmitsParseableLines) {
  MetricsRegistry::instance().gauge("agua.test.gauge").set(1.5);
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse response = get(server, "/metrics.json");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/x-ndjson");
  const std::vector<std::string> lines = lines_of(response.body);
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  bool found = false;
  for (const std::string& line : lines) {
    found |= line.find("\"name\":\"agua.test.gauge\"") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, HealthzFlipsTo503OnUnhealthyMonitor) {
  MonitorOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.max_healthy = 1.0;
  HealthMonitor& monitor = health_monitor("agua.health.test_telemetry", options);
  monitor.observe(0.5);
  monitor.observe(0.5);

  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  net::HttpClientResponse response = get(server, "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json; charset=utf-8");
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("agua.health.test_telemetry"), std::string::npos);

  // Push the rolling mean out of the healthy band → 503 with detail.
  monitor.observe(10.0);
  monitor.observe(10.0);
  monitor.observe(10.0);
  ASSERT_FALSE(monitor.healthy());
  response = get(server, "/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"status\":\"unhealthy\""), std::string::npos);
  EXPECT_NE(response.body.find("\"healthy\":false"), std::string::npos);

  // Recovery flips it back.
  for (int i = 0; i < 8; ++i) monitor.observe(0.5);
  ASSERT_TRUE(monitor.healthy());
  EXPECT_EQ(get(server, "/healthz").status, 200);
}

TEST_F(TelemetryTest, TracezServesTableAndJson) {
  set_trace_enabled(true);
  {
    TraceSpan outer("agua.test.outer");
    TraceSpan inner("agua.test.inner");
  }
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse table = get(server, "/tracez");
  EXPECT_EQ(table.status, 200);
  EXPECT_NE(table.body.find("agua.test.outer"), std::string::npos);
  EXPECT_NE(table.body.find("agua.test.inner"), std::string::npos);

  const net::HttpClientResponse json = get(server, "/tracez?format=json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json; charset=utf-8");
  EXPECT_EQ(json.body.front(), '[');
  EXPECT_NE(json.body.find("\"name\":\"agua.test.inner\""), std::string::npos);
  EXPECT_NE(json.body.find("\"parent_id\":"), std::string::npos);
}

TEST_F(TelemetryTest, TracezExplainsWhenCaptureIsOff) {
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse response = get(server, "/tracez");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("span capture is off"), std::string::npos);
}

TEST_F(TelemetryTest, EventszTailsTheRing) {
  for (int i = 0; i < 10; ++i) {
    event_log().append("test.telemetry.tick", {{"i", static_cast<double>(i)}});
  }
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse all = get(server, "/eventsz");
  EXPECT_EQ(all.status, 200);
  EXPECT_EQ(all.content_type, "application/x-ndjson");
  EXPECT_EQ(lines_of(all.body).size(), 10u);

  const net::HttpClientResponse tail = get(server, "/eventsz?n=3");
  const std::vector<std::string> lines = lines_of(tail.body);
  ASSERT_EQ(lines.size(), 3u);
  // The tail keeps the *newest* events, and each line honors the JSONL
  // round-trip contract.
  Event event;
  ASSERT_TRUE(parse_event_json(lines.front(), event)) << lines.front();
  EXPECT_EQ(event.kind, "test.telemetry.tick");
  ASSERT_FALSE(event.fields.empty());
  EXPECT_DOUBLE_EQ(event.fields[0].second, 7.0);
  ASSERT_TRUE(parse_event_json(lines.back(), event));
  EXPECT_DOUBLE_EQ(event.fields[0].second, 9.0);
}

TEST_F(TelemetryTest, BuildzReportsRuntimeInfo) {
  TelemetryOptions options;
  options.version = "test-1.2.3";
  TelemetryServer server(options);
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse response = get(server, "/buildz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json; charset=utf-8");
  EXPECT_NE(response.body.find("\"version\":\"test-1.2.3\""), std::string::npos);
  EXPECT_NE(response.body.find("\"threads\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"events_enabled\":true"), std::string::npos);
  EXPECT_NE(response.body.find("\"uptime_s\":"), std::string::npos);
}

TEST_F(TelemetryTest, IndexListsEndpoints) {
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const net::HttpClientResponse response = get(server, "/");
  EXPECT_EQ(response.status, 200);
  for (const char* endpoint :
       {"/metrics", "/metrics.json", "/healthz", "/tracez", "/eventsz", "/buildz"}) {
    EXPECT_NE(response.body.find(endpoint), std::string::npos) << endpoint;
  }
}

TEST_F(TelemetryTest, QuitEndpointUnblocksWait) {
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  // A too-short wait times out while no quit has been requested.
  EXPECT_FALSE(server.wait_for_quit(0.01));

  std::thread quitter([&server] {
    net::HttpClientResponse response;
    net::http_request("POST", "127.0.0.1", server.port(), "/quitquitquit", response);
    EXPECT_EQ(response.status, 200);
  });
  EXPECT_TRUE(server.wait_for_quit(10.0));
  quitter.join();
  // GET on the quit endpoint is refused: quitting must be deliberate.
  EXPECT_EQ(get(server, "/quitquitquit").status, 405);
}

TEST_F(TelemetryTest, ConcurrentScrapeDuringParallelTraining) {
  TelemetryServer server;
  ASSERT_TRUE(server.start()) << server.last_error();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> failures{0};
  // Scraper thread hammers every read endpoint while the pool below trains.
  std::thread scraper([&] {
    const char* targets[] = {"/metrics", "/metrics.json", "/healthz", "/eventsz?n=8"};
    std::size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      net::HttpClientResponse response;
      if (!net::http_get("127.0.0.1", server.port(), targets[i++ % 4], response) ||
          (response.status != 200 && response.status != 503)) {
        failures.fetch_add(1);
      }
      scrapes.fetch_add(1);
    }
  });

  // A training-shaped workload: pool regions recording histograms, counters,
  // events, and monitor observations from every worker.
  common::ThreadPool pool(2);
  MonitorOptions options;
  options.window = 32;
  options.min_samples = 4;
  options.min_healthy = -1.0;
  HealthMonitor& monitor = health_monitor("agua.health.test_scrape", options);
  // Train until the scraper has landed a healthy number of requests (bounded
  // so a wedged scraper can't hang the test) — a fixed round count can finish
  // before the first scrape completes on a loaded machine.
  std::uint64_t rounds = 0;
  while (scrapes.load(std::memory_order_acquire) < 8 && rounds < 2000) {
    ++rounds;
    obs::parallel_for(pool, "agua.pool.test_scrape", 64,
                      [&](std::size_t index, std::size_t /*worker*/) {
      MetricsRegistry::instance().counter("agua.test.scrape.work").add(1);
      MetricsRegistry::instance()
          .histogram("agua.test.scrape.latency")
          .record(1e-6 * static_cast<double>(index + 1));
      if (index % 16 == 0) {
        event_log().append("test.scrape.step", {{"index", static_cast<double>(index)}});
        monitor.observe(static_cast<double>(index % 7));
      }
    });
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(MetricsRegistry::instance().counter("agua.test.scrape.work").value(),
            rounds * 64u);
}

TEST_F(HttpServerTest, RoutesQueryParamsAndErrors) {
  net::HttpServer server;
  server.handle("GET", "/echo", [](const net::HttpRequest& request) {
    return net::HttpResponse::text(
        200, request.query_param("msg", "none") + "|" + request.query_param("x", "0"));
  });
  ASSERT_TRUE(server.start()) << server.last_error();

  net::HttpClientResponse response;
  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/echo?msg=hello%20world&x=5",
                            response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "hello world|5");

  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/echo", response));
  EXPECT_EQ(response.body, "none|0");

  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/missing", response));
  EXPECT_EQ(response.status, 404);

  ASSERT_TRUE(net::http_request("POST", "127.0.0.1", server.port(), "/echo", response));
  EXPECT_EQ(response.status, 405);
}

TEST_F(HttpServerTest, HandlerExceptionBecomes500) {
  net::HttpServer server;
  server.handle("GET", "/boom", [](const net::HttpRequest&) -> net::HttpResponse {
    throw std::runtime_error("kaput");
  });
  ASSERT_TRUE(server.start()) << server.last_error();
  net::HttpClientResponse response;
  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/boom", response));
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("kaput"), std::string::npos);
}

TEST_F(HttpServerTest, UrlDecodeHandlesEscapesAndInvalidSequences) {
  EXPECT_EQ(net::url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(net::url_decode("%2Fpath%3Fq"), "/path?q");
  EXPECT_EQ(net::url_decode("100%"), "100%");     // truncated escape kept verbatim
  EXPECT_EQ(net::url_decode("%zz"), "%zz");       // invalid hex kept verbatim
}

// Regression for the unbounded-read hole: a client that connects and then
// trickles (or stops sending entirely) used to hold the single-threaded
// accept loop hostage, because SO_RCVTIMEO resets on every received byte.
// The absolute request deadline answers 408 however chatty the client is.
TEST_F(HttpServerTest, SlowRequestHeadGets408NotAHang) {
  net::HttpServerOptions options;
  options.request_deadline_ms = 300;
  net::HttpServer server{options};
  server.handle("GET", "/ping", [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "pong\n");
  });
  ASSERT_TRUE(server.start()) << server.last_error();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  // Slowloris: keep the connection warm with one byte at a time, never
  // finishing the request head. Each byte would reset a per-recv timeout;
  // the absolute deadline must still fire.
  const char* head = "GET /ping HTTP/1.1\r\n";
  std::string reply;
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::size_t sent = 0;
  while (std::chrono::steady_clock::now() < give_up) {
    if (head[sent] != '\0') (void)::send(fd, head + sent++, 1, 0);
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 60) > 0) {  // server answered (or closed on us)
      char buf[512];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) reply.append(buf, static_cast<std::size_t>(n));
      break;
    }
  }
  ::close(fd);
  EXPECT_NE(reply.find("408"), std::string::npos) << "reply was: " << reply;
  EXPECT_GE(server.stats().request_timeouts, 1u);

  // The loop is free again: a well-behaved client is served normally.
  net::HttpClientResponse response;
  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/ping", response));
  EXPECT_EQ(response.status, 200);
}

TEST_F(HttpServerTest, SlowHandlerGets503) {
  net::HttpServerOptions options;
  options.handler_deadline_ms = 100;
  net::HttpServer server{options};
  server.handle("GET", "/stuck", [](const net::HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    return net::HttpResponse::text(200, "finally\n");
  });
  server.handle("GET", "/fast", [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "ok\n");
  });
  ASSERT_TRUE(server.start()) << server.last_error();

  net::HttpClientResponse response;
  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/stuck", response));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("deadline"), std::string::npos);
  EXPECT_EQ(server.stats().handler_timeouts, 1u);

  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/fast", response));
  EXPECT_EQ(response.status, 200);
}

TEST_F(TelemetryTest, HealthzEmbedsServerResilienceStats) {
  TelemetryServer server;
  ASSERT_TRUE(server.start());
  const net::HttpClientResponse response = get(server, "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"server\":{\"requests\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"accept_retries\":0"), std::string::npos);
  EXPECT_NE(response.body.find("\"degraded\":false"), std::string::npos);
}

TEST_F(HttpServerTest, PostBodyRoundTripsToHandler) {
  net::HttpServer server;
  server.handle("POST", "/echo", [](const net::HttpRequest& request) {
    return net::HttpResponse::text(200, request.body);
  });
  ASSERT_TRUE(server.start()) << server.last_error();
  net::HttpClientResponse response;
  const std::string body = "{\"payload\": [1, 2, 3]}";
  ASSERT_TRUE(net::http_post("127.0.0.1", server.port(), "/echo", body, response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, body);
}

TEST_F(HttpServerTest, OversizedBodyGets413) {
  net::HttpServerOptions options;
  options.max_body_bytes = 16;
  net::HttpServer server{options};
  server.handle("POST", "/echo", [](const net::HttpRequest& request) {
    return net::HttpResponse::text(200, request.body);
  });
  ASSERT_TRUE(server.start()) << server.last_error();
  net::HttpClientResponse response;
  ASSERT_TRUE(net::http_post("127.0.0.1", server.port(), "/echo",
                             std::string(64, 'x'), response));
  EXPECT_EQ(response.status, 413);
}

TEST_F(HttpServerTest, ExtraHeadersAreWritten) {
  net::HttpServer server;
  server.handle("GET", "/h", [](const net::HttpRequest&) {
    net::HttpResponse response = net::HttpResponse::text(200, "ok");
    response.extra_headers.emplace_back("X-Custom", "tagged");
    return response;
  });
  ASSERT_TRUE(server.start()) << server.last_error();
  net::HttpClientResponse response;
  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/h", response));
  EXPECT_EQ(response.header("x-custom"), "tagged");
  EXPECT_EQ(response.header("absent", "fallback"), "fallback");
}

TEST_F(HttpServerTest, ConnectionWorkersServeConcurrentRequests) {
  // With a worker pool, a handler parked on one connection must not block
  // another request — the property the serve plane's micro-batcher needs.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  net::HttpServerOptions options;
  options.connection_threads = 3;
  net::HttpServer server{options};
  server.handle("GET", "/slow", [&](const net::HttpRequest&) {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait_for(lock, std::chrono::seconds(5), [&] { return gate_open; });
    return net::HttpResponse::text(200, "slow");
  });
  server.handle("GET", "/fast", [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, "fast");
  });
  ASSERT_TRUE(server.start()) << server.last_error();

  std::thread slow_client([&] {
    net::HttpClientResponse response;
    net::http_get("127.0.0.1", server.port(), "/slow", response, 10000);
  });
  // The fast request completes while /slow is parked.
  net::HttpClientResponse fast;
  ASSERT_TRUE(net::http_get("127.0.0.1", server.port(), "/fast", fast, 10000));
  EXPECT_EQ(fast.body, "fast");
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  slow_client.join();
}

TEST_F(HttpServerTest, PortsAreReleasedOnStop) {
  net::HttpServerOptions options;
  std::uint16_t port = 0;
  {
    net::HttpServer server;
    ASSERT_TRUE(server.start());
    port = server.port();
  }  // destructor stops the server
  options.port = port;
  net::HttpServer reuse{options};
  EXPECT_TRUE(reuse.start()) << reuse.last_error();
}

TEST_F(SnapshotConsistencyTest, HistogramCountAlwaysMatchesBuckets) {
  Histogram& hist = MetricsRegistry::instance().histogram("agua.test.snap.hist");
  std::atomic<bool> done{false};
  std::thread writer([&] {
    common::Rng rng(7);
    while (!done.load(std::memory_order_acquire)) {
      hist.record(rng.uniform(1e-7, 10.0));
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot snap = hist.snapshot();
    std::uint64_t total = 0;
    for (const std::uint64_t c : snap.bucket_counts) total += c;
    ASSERT_EQ(snap.count, total) << "torn histogram snapshot at iteration " << i;
    if (snap.count > 0) {
      ASSERT_LE(snap.min, snap.max);
    }
  }
  done.store(true, std::memory_order_release);
  writer.join();
}

TEST_F(SnapshotConsistencyTest, CaptureSnapshotCoversAllComponents) {
  MetricsRegistry::instance().counter("agua.test.snap.count").add(2);
  event_log().append("test.snap.event");
  MonitorOptions options;
  options.min_samples = 1;
  health_monitor("agua.health.test_snap", options).observe(1.0);
  set_trace_enabled(true);
  { TraceSpan span("agua.test.snap.span"); }

  const Snapshot snap = capture_snapshot();
  EXPECT_GT(snap.captured_ns, 0);
  EXPECT_FALSE(snap.metrics.empty());
  EXPECT_FALSE(snap.events.empty());
  EXPECT_FALSE(snap.monitors.empty());
  EXPECT_FALSE(snap.spans.empty());
  EXPECT_TRUE(snap.all_healthy());

  // Tail limiting keeps the newest events.
  event_log().append("test.snap.newest");
  const Snapshot tail = capture_snapshot({.event_tail = 1});
  ASSERT_EQ(tail.events.size(), 1u);
  EXPECT_EQ(tail.events[0].kind, "test.snap.newest");

  // Opt-outs skip the component entirely.
  const Snapshot metrics_only = capture_snapshot(
      {.include_spans = false, .include_events = false, .include_monitors = false});
  EXPECT_TRUE(metrics_only.spans.empty());
  EXPECT_TRUE(metrics_only.events.empty());
  EXPECT_TRUE(metrics_only.monitors.empty());
  EXPECT_FALSE(metrics_only.metrics.empty());
}

TEST_F(SnapshotConsistencyTest, MonitorSnapshotIsOneConsistentRead) {
  MonitorOptions options;
  options.window = 8;
  options.min_samples = 2;
  options.max_healthy = 0.5;
  HealthMonitor& monitor = health_monitor("agua.health.test_snap2", options);
  monitor.observe(1.0);
  monitor.observe(1.0);
  const HealthMonitorSnapshot snap = monitor.snapshot();
  EXPECT_EQ(snap.name, "agua.health.test_snap2");
  EXPECT_FALSE(snap.healthy);
  EXPECT_DOUBLE_EQ(snap.rolling_mean, 1.0);
  EXPECT_EQ(snap.samples, 2u);
  EXPECT_EQ(snap.alerts, 1u);
  EXPECT_EQ(snap.window, 8u);
  EXPECT_DOUBLE_EQ(snap.max_healthy, 0.5);

  const std::vector<HealthMonitorSnapshot> all = snapshot_monitors();
  bool found = false;
  for (const HealthMonitorSnapshot& m : all) found |= m.name == snap.name;
  EXPECT_TRUE(found);
}

TEST_F(SnapshotConsistencyTest, PrometheusHelpTypeAndEscaping) {
  MetricsRegistry::instance().counter("agua.test prom \"weird\"\nname").add(1);
  const std::string text = export_prometheus();
  // Name sanitized to [a-zA-Z0-9_:]; HELP precedes TYPE and carries the
  // original name with backslash/newline escaped.
  EXPECT_NE(text.find("# HELP agua_test_prom__weird__name"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE agua_test_prom__weird__name counter\n"
                      "agua_test_prom__weird__name 1\n"),
            std::string::npos);
  // Every line is either a comment or `name[{labels}] value`.
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("# HELP", 0) == 0 || line.rfind("# TYPE", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      ASSERT_TRUE(ok) << "bad prometheus name char in: " << line;
    }
  }
}

}  // namespace
