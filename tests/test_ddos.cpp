#include <gtest/gtest.h>

#include "ddos/controller.hpp"
#include "ddos/describe.hpp"
#include "ddos/features.hpp"
#include "ddos/flows.hpp"

namespace {

using namespace agua;
using namespace agua::ddos;

TEST(Flows, TypeLabels) {
  EXPECT_FALSE(is_attack(FlowType::kBenignWeb));
  EXPECT_FALSE(is_attack(FlowType::kBenignStreaming));
  EXPECT_TRUE(is_attack(FlowType::kSynFlood));
  EXPECT_TRUE(is_attack(FlowType::kUdpFlood));
  EXPECT_TRUE(is_attack(FlowType::kLowAndSlow));
  EXPECT_STREQ(flow_type_name(FlowType::kSynFlood), "syn-flood");
}

TEST(Flows, SynFloodSignature) {
  common::Rng rng(1);
  const Flow flow = generate_flow(FlowType::kSynFlood, rng);
  EXPECT_GE(flow.packets.size(), 30u);
  for (const Packet& p : flow.packets) {
    EXPECT_TRUE(p.syn);
    EXPECT_FALSE(p.ack);
    EXPECT_DOUBLE_EQ(p.payload_bytes, 0.0);
    EXPECT_LE(p.iat_ms, 1.5);
  }
}

TEST(Flows, BenignWebHasHandshakeAndPayloads) {
  common::Rng rng(2);
  const Flow flow = generate_flow(FlowType::kBenignWeb, rng);
  ASSERT_GE(flow.packets.size(), 5u);
  EXPECT_TRUE(flow.packets[0].syn);
  EXPECT_TRUE(flow.packets[2].ack);
  double payload = 0.0;
  for (const Packet& p : flow.packets) payload += p.payload_bytes;
  EXPECT_GT(payload, 1000.0);
}

TEST(Flows, LowAndSlowHasHugeGaps) {
  common::Rng rng(3);
  const Flow flow = generate_flow(FlowType::kLowAndSlow, rng);
  double max_iat = 0.0;
  for (const Packet& p : flow.packets) max_iat = std::max(max_iat, p.iat_ms);
  EXPECT_GT(max_iat, 1000.0);
}

TEST(Flows, DatasetBalancedAndShuffled) {
  common::Rng rng(4);
  const auto flows = generate_dataset(200, 0.5, rng);
  ASSERT_EQ(flows.size(), 200u);
  std::size_t attacks = 0;
  for (const Flow& f : flows) {
    if (f.attack()) ++attacks;
  }
  EXPECT_EQ(attacks, 100u);
  // Not all attacks at the front (shuffled).
  std::size_t front_attacks = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (flows[i].attack()) ++front_attacks;
  }
  EXPECT_LT(front_attacks, 20u);
}

TEST(Features, DimensionsAndNames) {
  EXPECT_EQ(feature_names().size(), kFeatureDim);
  EXPECT_EQ(feature_scales().size(), kFeatureDim);
  common::Rng rng(5);
  const auto f = extract_features(generate_flow(FlowType::kBenignWeb, rng));
  EXPECT_EQ(f.size(), kFeatureDim);
}

TEST(Features, SynFloodAggregates) {
  common::Rng rng(6);
  const auto f = extract_features(generate_flow(FlowType::kSynFlood, rng));
  EXPECT_DOUBLE_EQ(f[DdosLayout::kSynRatio], 1.0);
  EXPECT_DOUBLE_EQ(f[DdosLayout::kAckRatio], 0.0);
  EXPECT_DOUBLE_EQ(f[DdosLayout::kPayloadRatio], 0.0);
  EXPECT_GT(f[DdosLayout::kPacketRate], 1000.0);
}

TEST(Features, UdpFloodAggregates) {
  common::Rng rng(7);
  const auto f = extract_features(generate_flow(FlowType::kUdpFlood, rng));
  EXPECT_DOUBLE_EQ(f[DdosLayout::kUdpRatio], 1.0);
  EXPECT_GT(f[DdosLayout::kPayloadRatio], 0.9);
}

TEST(Features, EmptyFlowIsZero) {
  Flow empty;
  empty.packets.clear();
  const auto f = extract_features(empty);
  for (double x : f) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Controller, LearnsToSeparateAttacks) {
  common::Rng rng(8);
  DdosController controller(8);
  const auto train = generate_dataset(400, 0.5, rng);
  const double train_acc = train_supervised(controller, train, 30, 0.05, rng);
  EXPECT_GT(train_acc, 0.97);
  const auto test = generate_dataset(200, 0.5, rng);
  EXPECT_GT(evaluate_accuracy(controller, test), 0.95);
}

TEST(Controller, EmbeddingDimsMatchConfig) {
  DdosController controller(9);
  common::Rng rng(9);
  const auto f = extract_features(generate_flow(FlowType::kBenignWeb, rng));
  EXPECT_EQ(controller.embedding(f).size(), 24u);
  const auto probs = controller.output_probs(f);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
}

TEST(Describer, SynFloodFlaggedByProtocolAndPayloadAnomalies) {
  common::Rng rng(10);
  DdosDescriber describer;
  const auto f = extract_features(generate_flow(FlowType::kSynFlood, rng));
  const auto scores = describer.detect_concepts(f);
  double protocol_anomalies = 0.0;
  double payload_anomalies = 0.0;
  double typical = 0.0;
  for (const auto& [name, score] : scores) {
    if (name == "Protocol Anomalies") protocol_anomalies = score;
    if (name == "Payload Anomalies") payload_anomalies = score;
    if (name == "Typical Application Behavior") typical = score;
  }
  EXPECT_GT(protocol_anomalies, 0.5);
  EXPECT_GT(payload_anomalies, 0.5);
  EXPECT_LT(typical, 0.3);
}

TEST(Describer, BenignWebLooksTypical) {
  common::Rng rng(11);
  DdosDescriber describer;
  const auto f = extract_features(generate_flow(FlowType::kBenignWeb, rng));
  const auto scores = describer.detect_concepts(f);
  double typical = 0.0;
  double protocol_anomalies = 0.0;
  for (const auto& [name, score] : scores) {
    if (name == "Typical Application Behavior") typical = score;
    if (name == "Protocol Anomalies") protocol_anomalies = score;
  }
  EXPECT_GT(typical, 0.4);
  EXPECT_LT(protocol_anomalies, typical);
}

TEST(Describer, LowAndSlowDetected) {
  common::Rng rng(12);
  DdosDescriber describer;
  const auto f = extract_features(generate_flow(FlowType::kLowAndSlow, rng));
  const auto scores = describer.detect_concepts(f);
  double low_slow = 0.0;
  for (const auto& [name, score] : scores) {
    if (name == "Low-and-Slow Attack Indicators") low_slow = score;
  }
  EXPECT_GT(low_slow, 0.3);
}

TEST(Describer, TemplateSectionsPresent) {
  common::Rng rng(13);
  DdosDescriber describer;
  const auto f = extract_features(generate_flow(FlowType::kUdpFlood, rng));
  const std::string text = describer.describe(f);
  EXPECT_NE(text.find("Packet timing:"), std::string::npos);
  EXPECT_NE(text.find("Protocol flags:"), std::string::npos);
  EXPECT_NE(text.find("Payload characteristics:"), std::string::npos);
  EXPECT_NE(text.find("key concept"), std::string::npos);
}

}  // namespace
