# Empty compiler generated dependencies file for fig8_retraining.
# This may be replaced when dependencies are built.
