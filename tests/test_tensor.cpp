#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace {

using agua::nn::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, agua::common::Rng& rng) {
  Matrix m(r, c);
  for (double& x : m.data()) x = rng.uniform(-2.0, 2.0);
  return m;
}

TEST(Tensor, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(Tensor, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Tensor, MatmulKnownValues) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(Tensor, TransposeMatmulMatchesExplicit) {
  agua::common::Rng rng(5);
  const Matrix a = random_matrix(4, 3, rng);
  const Matrix b = random_matrix(4, 5, rng);
  const Matrix fast = a.transpose_matmul(b);
  const Matrix slow = a.transposed().matmul(b);
  ASSERT_EQ(fast.rows(), slow.rows());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-12);
  }
}

TEST(Tensor, MatmulTransposeMatchesExplicit) {
  agua::common::Rng rng(6);
  const Matrix a = random_matrix(4, 3, rng);
  const Matrix b = random_matrix(5, 3, rng);
  const Matrix fast = a.matmul_transpose(b);
  const Matrix slow = a.matmul(b.transposed());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-12);
  }
}

TEST(Tensor, GatherRows) {
  const Matrix m = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const Matrix g = m.gather_rows({2, 0});
  EXPECT_DOUBLE_EQ(g.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 1.0);
}

TEST(Tensor, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1.0, -2.0}});
  const Matrix b = Matrix::from_rows({{3.0, 4.0}});
  a.add(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  a.sub(b);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -2.0);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  a.hadamard(b);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -16.0);
  a.apply([](double x) { return x * 0.0 + 1.0; });
  EXPECT_DOUBLE_EQ(a.sum(), 2.0);
}

TEST(Tensor, RowBroadcastAndColumnSums) {
  Matrix m(2, 2, 1.0);
  m.add_row_broadcast(Matrix::row_vector({1.0, 2.0}));
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
  const Matrix sums = m.column_sums();
  EXPECT_DOUBLE_EQ(sums.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sums.at(0, 1), 6.0);
}

TEST(Tensor, Reductions) {
  const Matrix m = Matrix::from_rows({{1.0, -2.0}, {3.0, -4.0}});
  EXPECT_DOUBLE_EQ(m.sum(), -2.0);
  EXPECT_DOUBLE_EQ(m.abs_sum(), 10.0);
  EXPECT_DOUBLE_EQ(m.squared_sum(), 30.0);
}

TEST(Tensor, XavierInitBounded) {
  agua::common::Rng rng(7);
  Matrix m(20, 30);
  m.xavier_init(rng);
  const double limit = std::sqrt(6.0 / 50.0);
  for (double x : m.data()) {
    EXPECT_GE(x, -limit);
    EXPECT_LE(x, limit);
  }
  EXPECT_GT(m.abs_sum(), 0.0);
}

TEST(Tensor, SaveLoadRoundTrip) {
  agua::common::Rng rng(8);
  const Matrix m = random_matrix(3, 4, rng);
  std::stringstream stream;
  agua::common::BinaryWriter w(stream);
  m.save(w);
  agua::common::BinaryReader r(stream);
  const Matrix loaded = Matrix::load(r);
  ASSERT_EQ(loaded.rows(), 3u);
  ASSERT_EQ(loaded.cols(), 4u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.data()[i], m.data()[i]);
  }
}

TEST(Tensor, RowSoftmaxRowsSumToOne) {
  const Matrix logits = Matrix::from_rows({{1.0, 2.0, 3.0}, {-10.0, 0.0, 10.0}});
  const Matrix probs = agua::nn::row_softmax(logits);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      total += probs.at(r, c);
      EXPECT_GE(probs.at(r, c), 0.0);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  EXPECT_GT(probs.at(1, 2), 0.99);
}

}  // namespace
