file(REMOVE_RECURSE
  "../bench/fig1_trustee_complexity"
  "../bench/fig1_trustee_complexity.pdb"
  "CMakeFiles/fig1_trustee_complexity.dir/fig1_trustee_complexity.cpp.o"
  "CMakeFiles/fig1_trustee_complexity.dir/fig1_trustee_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_trustee_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
