// Flight recorder: a process-wide bounded ring buffer of structured events
// (timestamp, thread, open span, kind, numeric key/value payload) that the
// runtime appends into at interesting moments — per-epoch training stats,
// pipeline stage boundaries, health-monitor threshold crossings. The ring is
// preallocated and mutex-guarded (appends are a slot overwrite; slot strings
// keep their capacity after the first lap, so steady-state appends do not
// allocate), bounded so a long run keeps the most recent N events, and
// dumpable as JSON lines — including from a std::terminate hook, so an
// aborted run leaves a forensic trail (`agua_cli --flight-record PATH`).
//
// Recording is off by default; `EventLog::set_enabled(true)` (or the CLI
// flag) turns it on. A disabled append is one relaxed atomic load + branch,
// so emit points can stay unconditionally wired into the hot-ish paths
// (epoch boundaries, monitor observations — never per-sample inner loops).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace agua::obs {

/// One structured event. Payload values are numeric (doubles) by design:
/// every emitter so far reports measurements, and a closed value type keeps
/// the JSONL schema stable and the ring slots reusable without allocation.
struct Event {
  std::uint64_t seq = 0;      ///< 1-based append index (survives wraparound)
  std::int64_t ts_ns = 0;     ///< now_ns() at append time
  std::uint64_t thread = 0;   ///< per-thread ordinal (same as span records)
  std::uint64_t span_id = 0;  ///< innermost open span when appended (0 = none)
  std::string kind;           ///< dotted event name, e.g. "train.concept.epoch"
  std::vector<std::pair<std::string, double>> fields;
};

/// Key/value payload for append(): `{{"epoch", 3.0}, {"loss", 0.12}}`.
using EventFields = std::initializer_list<std::pair<std::string_view, double>>;

/// Bounded ring buffer of events. Thread-safe; appends from pool workers are
/// fine (one mutex acquisition each — event emission sits at stage/epoch
/// granularity, not per sample).
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  /// Master switch; a disabled append is a relaxed load + branch.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Append one event, stamping timestamp, thread ordinal, and the innermost
  /// open trace span of the calling thread. Overwrites the oldest event once
  /// the ring is full. No-op when disabled.
  void append(std::string_view kind, EventFields fields = {});

  /// Events currently retained, oldest first.
  std::vector<Event> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Total appends since construction/clear, including overwritten ones.
  std::uint64_t total_appended() const;
  /// Events lost to wraparound (total_appended() - size()).
  std::uint64_t dropped() const;

  /// Drop all retained events and reset the sequence counter.
  void clear();

  /// One JSON object per retained event, oldest first (see event_to_json).
  std::string to_jsonl() const;
  /// Write to_jsonl() to `path`. Returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::vector<Event> ring_;  // preallocated to capacity_
  std::size_t head_ = 0;     // next write slot
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// The process-wide flight recorder every emit point appends into.
EventLog& event_log();

/// `{"seq":N,"ts_ns":N,"thread":N,"span":N,"kind":"...","fields":{...}}`.
std::string event_to_json(const Event& event);

/// Parse one event_to_json() line back into an Event. Returns false on any
/// schema mismatch. This is the round-trip contract the JSONL sink is tested
/// against (test_events.cpp) and what offline tooling may rely on.
bool parse_event_json(std::string_view line, Event& out);

/// Parse a whole JSONL dump; stops and returns what it has on a bad line
/// (`ok`, when given, reports whether every line parsed).
std::vector<Event> parse_events_jsonl(std::string_view text, bool* ok = nullptr);

/// Configure dump-on-abort: installs a std::terminate handler (once) that
/// writes the current ring to `path` before the process dies, and remembers
/// `path` for flush_flight_record(). An empty path disables dumping but
/// leaves the handler installed.
void set_flight_record_path(std::string path);

/// Write the ring to the configured path now (normal end-of-run flush).
/// Returns false if no path is set or the write fails.
bool flush_flight_record();

}  // namespace agua::obs
