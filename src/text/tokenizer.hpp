// Tokenization for the text-embedding substrate: lower-cased word tokens,
// word bigrams, and character trigrams. The embedding model hashes these
// together so that both lexical overlap (shared concept phrases) and
// morphological similarity (e.g., "increase"/"increasing") contribute to
// cosine similarity, mimicking the behaviour of dense sentence embeddings on
// template-constrained text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace agua::text {

/// Lower-cases and splits on non-alphanumeric characters; drops empty tokens
/// and bare numbers (the numeric values in descriptions carry their meaning
/// through the trend words, not the digits).
std::vector<std::string> word_tokens(std::string_view text);

/// Adjacent word pairs joined with '_'.
std::vector<std::string> word_bigrams(const std::vector<std::string>& words);

/// Character trigrams of each word, with boundary markers ("^wo", "ord", "rd$").
std::vector<std::string> char_trigrams(const std::vector<std::string>& words);

/// Full token stream for the embedder: words + bigrams + char trigrams.
std::vector<std::string> all_tokens(std::string_view text);

}  // namespace agua::text
