# Empty compiler generated dependencies file for agua_baselines.
# This may be replaced when dependencies are built.
