// Optimizers and regularizers.
//
// SGD with momentum matches the paper's training recipe (§4 "Training
// Parameters": momentum 0.25 for the concept mapping). ElasticNet (eq. 6)
// is applied by adding its subgradient to the parameter gradients before the
// optimizer step, exactly as a deep-learning framework's weight-decay hook.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace agua::nn {

/// Mini-batch stochastic gradient descent with classical momentum.
class SgdOptimizer {
 public:
  struct Options {
    double learning_rate = 0.01;
    double momentum = 0.0;
    double gradient_clip = 0.0;  ///< 0 disables clipping (global L2 norm).
  };

  SgdOptimizer(std::vector<Parameter*> params, Options options);

  /// Apply one update using the gradients accumulated on the parameters.
  void step();

  /// Clear parameter gradients.
  void zero_grad();

  Options& options() { return options_; }

  /// Momentum buffers, one per parameter — exposed for training checkpoints
  /// (resuming mid-run needs the optimizer state, not just the weights).
  const std::vector<Matrix>& velocity() const { return velocity_; }
  /// Restore momentum buffers; ignored unless `v` matches params in count.
  void set_velocity(std::vector<Matrix> v);

 private:
  std::vector<Parameter*> params_;
  std::vector<Matrix> velocity_;
  Options options_;
};

/// Adam (Kingma & Ba, 2015). Not used by the paper's recipe (which is SGD
/// with momentum) but provided for downstream users training larger
/// controllers on these substrates.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double gradient_clip = 0.0;  ///< 0 disables clipping (global L2 norm)
  };

  AdamOptimizer(std::vector<Parameter*> params, Options options);

  void step();
  void zero_grad();

  Options& options() { return options_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  std::size_t t_ = 0;
  Options options_;
};

/// ElasticNet regularization (eq. 6 of the paper):
///   l_elastic = (1-alpha) * ||W||_2^2 + alpha * (||W||_1 + ||b||_1)
/// `apply_elastic_net` adds coef * d(l_elastic)/dW to each parameter's
/// gradient; `elastic_net_penalty` reports the penalty value for monitoring.
void apply_elastic_net(const std::vector<Parameter*>& params, double alpha, double coef);
double elastic_net_penalty(const std::vector<Parameter*>& params, double alpha);

}  // namespace agua::nn
