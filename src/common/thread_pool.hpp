// Fixed-size worker pool with a parallel_for/parallel_map API.
//
// Design rules that the rest of the stack relies on (DESIGN.md §7):
//  - The calling thread participates as worker 0; a pool of size 1 spawns no
//    threads and runs tasks inline in index order, so "1 thread" *is* the
//    serial path (no scheduling, no synchronization).
//  - Work items are claimed dynamically (atomic ticket), so callers that need
//    determinism must make each item's result independent of which worker ran
//    it and reduce results in a fixed order afterwards.
//  - The first exception thrown by a task aborts the remaining unclaimed
//    items and is rethrown on the calling thread.
//  - Nested parallel regions are rejected (std::logic_error): a task may not
//    call parallel_for on any pool.
//
// This header is observability-free on purpose (obs depends on common);
// instrumented fan-out lives in obs/parallel.hpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace agua::common {

class ThreadPool {
 public:
  /// Task signature: `index` in [0, count), `worker` in [0, thread_count()).
  /// A given worker runs its items sequentially, so per-worker scratch state
  /// indexed by `worker` needs no locking.
  using IndexFn = std::function<void(std::size_t index, std::size_t worker)>;

  /// `threads` counts the calling thread: N spawns N-1 background workers.
  /// 0 resolves to the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (>= 1).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run fn(0..count-1, worker) across the pool; blocks until every item has
  /// completed. Rethrows the first task exception. Throws std::logic_error if
  /// called from inside a task of any pool.
  void parallel_for(std::size_t count, const IndexFn& fn);

  /// parallel_for that collects fn(index) results in index order. The result
  /// type must be default-constructible.
  template <typename Fn>
  auto parallel_map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> out(count);
    parallel_for(count,
                 [&](std::size_t index, std::size_t) { out[index] = fn(index); });
    return out;
  }

  /// True while the current thread is executing a parallel_for task.
  static bool in_parallel_region();

 private:
  struct Region;

  /// `worker_id` is 1-based (the calling thread is worker 0).
  void worker_loop(std::size_t worker_id);
  static void run_region(Region& region, std::size_t worker);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a new region
  std::condition_variable done_cv_;  // caller waits for region completion
  Region* region_ = nullptr;         // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
};

/// The process-wide pool used by the training / explanation hot paths when no
/// pool is passed explicitly. Sized on first use from AGUA_THREADS or the
/// hardware concurrency; resize with set_default_thread_count.
ThreadPool& default_pool();

/// Current size of the default pool (resolves it if not yet created).
std::size_t default_thread_count();

/// Recreate the default pool with `threads` workers (0 = auto). Joins the old
/// pool first — must not be called while a parallel_for is in flight.
void set_default_thread_count(std::size_t threads);

}  // namespace agua::common
