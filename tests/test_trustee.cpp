#include "trustee/trustee.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace {

using namespace agua::trustee;

/// A simple axis-aligned teacher: class = (x0 > 0.5) + 2*(x1 > 0.3).
std::size_t grid_teacher(const std::vector<double>& x) {
  return static_cast<std::size_t>(x[0] > 0.5) + 2 * static_cast<std::size_t>(x[1] > 0.3);
}

std::vector<std::vector<double>> random_inputs(std::size_t n, std::size_t dims,
                                               agua::common::Rng& rng) {
  std::vector<std::vector<double>> inputs(n, std::vector<double>(dims));
  for (auto& row : inputs) {
    for (double& x : row) x = rng.uniform(0.0, 1.0);
  }
  return inputs;
}

TEST(DecisionTree, LearnsAxisAlignedFunctionPerfectly) {
  agua::common::Rng rng(1);
  const auto inputs = random_inputs(500, 3, rng);
  std::vector<std::size_t> labels;
  for (const auto& x : inputs) labels.push_back(grid_teacher(x));
  DecisionTree::Options exact;  // disable the regularization defaults
  exact.min_samples_split = 2;
  exact.min_samples_leaf = 1;
  exact.max_thresholds = 0;
  DecisionTree tree;
  tree.fit(inputs, labels, 4, exact);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(tree.predict(inputs[i]), labels[i]);
  }
}

TEST(DecisionTree, DefaultsStillFitWell) {
  agua::common::Rng rng(11);
  const auto inputs = random_inputs(500, 3, rng);
  std::vector<std::size_t> labels;
  for (const auto& x : inputs) labels.push_back(grid_teacher(x));
  DecisionTree tree;
  tree.fit(inputs, labels, 4);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (tree.predict(inputs[i]) == labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(inputs.size()), 0.95);
}

TEST(DecisionTree, GeneralizesOnHeldOut) {
  agua::common::Rng rng(2);
  const auto train = random_inputs(800, 3, rng);
  std::vector<std::size_t> labels;
  for (const auto& x : train) labels.push_back(grid_teacher(x));
  DecisionTree tree;
  tree.fit(train, labels, 4);
  const auto test = random_inputs(300, 3, rng);
  std::size_t correct = 0;
  for (const auto& x : test) {
    if (tree.predict(x) == grid_teacher(x)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 300.0, 0.95);
}

TEST(DecisionTree, MaxDepthRespected) {
  agua::common::Rng rng(3);
  const auto inputs = random_inputs(400, 5, rng);
  std::vector<std::size_t> labels;
  for (const auto& x : inputs) labels.push_back(grid_teacher(x));
  DecisionTree::Options options;
  options.max_depth = 2;
  DecisionTree tree;
  tree.fit(inputs, labels, 4, options);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  const std::vector<std::vector<double>> inputs = {{0.1}, {0.2}, {0.3}};
  DecisionTree tree;
  tree.fit(inputs, {1, 1, 1}, 2);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({0.9}), 1u);
}

TEST(DecisionTree, DecisionPathConsistentWithPrediction) {
  agua::common::Rng rng(4);
  const auto inputs = random_inputs(300, 2, rng);
  std::vector<std::size_t> labels;
  for (const auto& x : inputs) labels.push_back(grid_teacher(x));
  DecisionTree tree;
  tree.fit(inputs, labels, 4);
  const std::vector<double> query = {0.7, 0.1};
  const auto path = tree.decision_path(query);
  EXPECT_FALSE(path.empty());
  // Replaying the path decisions must reach the predicted leaf.
  for (const DecisionStep& step : path) {
    EXPECT_EQ(step.went_left, query[step.feature] <= step.threshold);
  }
}

TEST(DecisionTree, FormatPathReadable) {
  const std::vector<DecisionStep> path = {{0, 0.5, true}, {1, 0.25, false}};
  const std::string text = DecisionTree::format_path(path, {"buffer", "throughput"});
  EXPECT_NE(text.find("buffer <= 0.500"), std::string::npos);
  EXPECT_NE(text.find("throughput > 0.250"), std::string::npos);
}

TEST(DecisionTree, PrunedTopKShrinksTree) {
  agua::common::Rng rng(5);
  const auto inputs = random_inputs(800, 4, rng);
  // A noisy target forces a large tree.
  std::vector<std::size_t> labels;
  for (const auto& x : inputs) {
    labels.push_back((grid_teacher(x) + (rng.bernoulli(0.15) ? 1 : 0)) % 4);
  }
  DecisionTree tree;
  tree.fit(inputs, labels, 4);
  ASSERT_GT(tree.leaf_count(), 8u);
  const DecisionTree pruned = tree.pruned_top_k(4);
  EXPECT_LT(pruned.node_count(), tree.node_count());
  EXPECT_LE(pruned.depth(), tree.depth());
  // Pruned tree still predicts valid classes.
  for (int i = 0; i < 20; ++i) {
    EXPECT_LT(pruned.predict(inputs[static_cast<std::size_t>(i)]), 4u);
  }
}

TEST(DecisionTree, PrunedKeepsMajorityBehaviour) {
  agua::common::Rng rng(6);
  const auto inputs = random_inputs(600, 2, rng);
  std::vector<std::size_t> labels;
  for (const auto& x : inputs) labels.push_back(grid_teacher(x));
  DecisionTree tree;
  tree.fit(inputs, labels, 4);
  const DecisionTree pruned = tree.pruned_top_k(6);
  std::size_t agree = 0;
  for (const auto& x : inputs) {
    if (pruned.predict(x) == tree.predict(x)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(inputs.size()), 0.8);
}

TEST(Fidelity, MatchesDefinition) {
  EXPECT_DOUBLE_EQ(fidelity({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75);
  EXPECT_DOUBLE_EQ(fidelity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(fidelity({1}, {1, 2}), 0.0);
}

TEST(Trustee, DistillsControllerWithHighFidelity) {
  agua::common::Rng rng(7);
  const auto train = random_inputs(600, 3, rng);
  const auto test = random_inputs(300, 3, rng);
  TrusteeExplainer trustee;
  const TrustReport report = trustee.train(train, grid_teacher, 4, test, rng);
  EXPECT_GT(report.full_fidelity, 0.9);
  EXPECT_GT(report.pruned_fidelity, 0.7);
  EXPECT_EQ(report.iterations_run, 5u);
  EXPECT_GT(report.full_tree.node_count(), 0u);
  EXPECT_LE(report.pruned_tree.node_count(), report.full_tree.node_count());
}

TEST(Trustee, SummaryContainsKeyNumbers) {
  agua::common::Rng rng(8);
  const auto train = random_inputs(200, 2, rng);
  TrusteeExplainer trustee;
  const TrustReport report = trustee.train(train, grid_teacher, 4, train, rng);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("full tree"), std::string::npos);
  EXPECT_NE(summary.find("pruned tree"), std::string::npos);
  EXPECT_NE(summary.find("fidelity"), std::string::npos);
}

}  // namespace
