# Empty compiler generated dependencies file for agua_bundles.
# This may be replaced when dependencies are built.
