# Empty compiler generated dependencies file for concept_derivation.
# This may be replaced when dependencies are built.
