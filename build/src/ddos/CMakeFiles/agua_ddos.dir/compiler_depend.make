# Empty compiler generated dependencies file for agua_ddos.
# This may be replaced when dependencies are built.
