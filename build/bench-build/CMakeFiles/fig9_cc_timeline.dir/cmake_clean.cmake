file(REMOVE_RECURSE
  "../bench/fig9_cc_timeline"
  "../bench/fig9_cc_timeline.pdb"
  "CMakeFiles/fig9_cc_timeline.dir/fig9_cc_timeline.cpp.o"
  "CMakeFiles/fig9_cc_timeline.dir/fig9_cc_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
