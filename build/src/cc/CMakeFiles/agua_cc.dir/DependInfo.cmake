
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/controller.cpp" "src/cc/CMakeFiles/agua_cc.dir/controller.cpp.o" "gcc" "src/cc/CMakeFiles/agua_cc.dir/controller.cpp.o.d"
  "/root/repo/src/cc/describe.cpp" "src/cc/CMakeFiles/agua_cc.dir/describe.cpp.o" "gcc" "src/cc/CMakeFiles/agua_cc.dir/describe.cpp.o.d"
  "/root/repo/src/cc/env.cpp" "src/cc/CMakeFiles/agua_cc.dir/env.cpp.o" "gcc" "src/cc/CMakeFiles/agua_cc.dir/env.cpp.o.d"
  "/root/repo/src/cc/teacher.cpp" "src/cc/CMakeFiles/agua_cc.dir/teacher.cpp.o" "gcc" "src/cc/CMakeFiles/agua_cc.dir/teacher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/agua_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/agua_text.dir/DependInfo.cmake"
  "/root/repo/build/src/concepts/CMakeFiles/agua_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/agua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
