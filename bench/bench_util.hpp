// Shared helpers for the bench harnesses: paper-vs-measured tables and
// series printing. Each bench binary regenerates one table or figure of the
// paper (see DESIGN.md experiment index) and prints the measured values next
// to the paper's, so shape-level agreement can be checked at a glance.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "common/table.hpp"

namespace agua::bench {

inline void print_header(const std::string& experiment, const std::string& description) {
  std::printf("%s", common::section(experiment + " — " + description).c_str());
}

/// One paper-vs-measured metric row.
struct MetricRow {
  std::string label;
  double paper = 0.0;
  double measured = 0.0;
};

inline void print_metrics(const std::vector<MetricRow>& rows, int precision = 3) {
  common::TablePrinter table({"metric", "paper", "measured", "rel err"});
  for (const MetricRow& row : rows) {
    // |measured − paper| / |paper| quantifies shape-level agreement; a paper
    // value of zero has no meaningful relative scale. Fixed 3-decimal
    // formatting, independent of the metric's own precision (which is 0 for
    // integer metrics like node counts).
    const std::string rel_err =
        row.paper != 0.0
            ? common::format_double(
                  std::abs(row.measured - row.paper) / std::abs(row.paper), 3)
            : "-";
    table.add_row({row.label, common::format_double(row.paper, precision),
                   common::format_double(row.measured, precision), rel_err});
  }
  std::printf("%s", table.render().c_str());
}

/// Print an (x, series...) block for re-plotting a figure.
inline void print_series(const std::vector<std::string>& columns,
                         const std::vector<std::vector<double>>& rows,
                         int precision = 3) {
  common::TablePrinter table(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) cells.push_back(common::format_double(v, precision));
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace agua::bench
