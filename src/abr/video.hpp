// Video manifest: chunk ladder sizes and SSIM qualities, with a wandering
// content-complexity process (talk-show vs high-action segments) so that
// "content complexity" concepts are inferable from upcoming chunk metadata.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace agua::abr {

inline constexpr std::size_t kQualityLevels = 5;

/// Per-chunk encoding ladder.
struct ChunkLadder {
  std::array<double, kQualityLevels> size_mb{};
  std::array<double, kQualityLevels> ssim_db{};
  double complexity = 1.0;
};

/// A pre-encoded video: 2-second chunks at kQualityLevels bitrates.
struct VideoManifest {
  double chunk_seconds = 2.0;
  std::vector<ChunkLadder> chunks;

  std::size_t chunk_count() const { return chunks.size(); }

  /// Generate a manifest with an AR(1) complexity process.
  static VideoManifest generate(std::size_t chunk_count, common::Rng& rng);
};

}  // namespace agua::abr
