#include "ddos/controller.hpp"

namespace agua::ddos {
namespace {

nn::PolicyNetwork make_network(std::uint64_t seed, std::size_t hidden_dim,
                               std::size_t embed_dim) {
  nn::PolicyNetwork::Config cfg;
  cfg.input_dim = kFeatureDim;
  cfg.hidden_dim = hidden_dim;
  cfg.embed_dim = embed_dim;
  cfg.num_outputs = DdosController::kClasses;
  cfg.input_scales = feature_scales();
  common::Rng rng(seed);
  return nn::PolicyNetwork(cfg, rng);
}

}  // namespace

DdosController::DdosController(std::uint64_t seed, std::size_t hidden_dim,
                               std::size_t embed_dim)
    : network_(make_network(seed, hidden_dim, embed_dim)) {}

double train_supervised(DdosController& controller, const std::vector<Flow>& flows,
                        std::size_t epochs, double learning_rate, common::Rng& rng) {
  std::vector<std::vector<double>> features;
  std::vector<std::size_t> labels;
  features.reserve(flows.size());
  labels.reserve(flows.size());
  for (const Flow& flow : flows) {
    features.push_back(extract_features(flow));
    labels.push_back(flow.attack() ? kAttackClass : kBenignClass);
  }
  nn::SgdOptimizer::Options opt;
  opt.learning_rate = learning_rate;
  opt.momentum = 0.9;
  opt.gradient_clip = 5.0;
  nn::SgdOptimizer optimizer(controller.network().parameters(), opt);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    controller.network().train_supervised_epoch(features, labels, /*batch_size=*/32,
                                                optimizer, rng);
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (controller.classify(features[i]) == labels[i]) ++correct;
  }
  return features.empty() ? 0.0
                          : static_cast<double>(correct) / static_cast<double>(features.size());
}

double evaluate_accuracy(DdosController& controller, const std::vector<Flow>& flows) {
  if (flows.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Flow& flow : flows) {
    const std::size_t predicted = controller.classify(extract_features(flow));
    const std::size_t truth = flow.attack() ? kAttackClass : kBenignClass;
    if (predicted == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(flows.size());
}

}  // namespace agua::ddos
