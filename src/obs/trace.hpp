// RAII timing primitives on top of the metrics registry.
//
// ScopedTimer records one wall-clock duration into a named histogram.
// TraceSpan does the same *and* captures a begin/end event into the process
// span buffer, with parentage tracked through a thread-local span stack, so a
// run can be rendered as a hierarchical span tree (format_span_tree).
//
// Span capture is off by default (set_trace_enabled); histogram recording is
// always on so `--metrics-out` works without `--trace`.
//
// Request tracing rides on top: a thread establishes a 128-bit trace id with
// TraceContextScope (the serving plane does this per request, from the
// net-layer traceparent context), and every span completed while the scope
// is active is copied into a bounded per-trace index — independent of the
// global set_trace_enabled switch, so /tracez?trace=ID works on a production
// server that is not buffering the full span firehose. The same thread-local
// context feeds histogram exemplars (record_latency), which is how a
// /metrics bucket points back at a concrete request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace agua::obs {

/// 128-bit request trace identity (W3C trace-context trace-id). The zero id
/// is invalid, matching the spec.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  bool operator==(const TraceId& other) const {
    return hi == other.hi && lo == other.lo;
  }
  /// 32 lower-case hex characters (the traceparent wire format).
  std::string hex() const;
  /// Parse exactly 32 hex characters. Returns false (leaving `out`
  /// untouched) on bad length, non-hex input, or the all-zero id.
  static bool parse(std::string_view s, TraceId& out);
};

/// One completed begin/end event. Parentage refers to span ids; parent_id 0
/// means a root span. Ids are unique per process, start at 1.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t thread_id = 0;  // small per-thread ordinal, not the OS tid
  std::size_t depth = 0;        // root = 0
  std::string name;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  TraceId trace;                // active request trace, if any (may be zero)

  double duration_seconds() const {
    return static_cast<double>(end_ns - begin_ns) * 1e-9;
  }
};

/// Toggle span capture (TraceSpan begin/end buffering). Histogram timing is
/// unaffected.
void set_trace_enabled(bool enabled);
bool trace_enabled();

/// Copy out every span completed so far (across all threads), ordered by
/// begin time.
std::vector<SpanRecord> collect_spans();

/// Drop all buffered spans.
void clear_spans();

/// Render spans as an indented tree with per-span durations (ms) and each
/// child's share of its parent. Spans from different threads render as
/// separate roots.
std::string format_span_tree(const std::vector<SpanRecord>& spans);

/// Id of the innermost span currently open on this thread (0 when none, or
/// when tracing is disabled). Capture it before handing work to a pool so the
/// worker can adopt it via SpanParentScope.
std::uint64_t current_span_id();

/// Small per-thread ordinal (first caller gets 1) — the same id SpanRecords
/// carry, reused by the event log so events and spans correlate by thread.
std::uint64_t thread_ordinal();

/// The calling thread's active request trace id (zero id when none). Set
/// with TraceContextScope.
TraceId current_trace();

/// RAII activation of a request trace on the calling thread. While alive,
/// spans completed on this thread are indexed under `id` (bounded per-trace
/// index, see spans_for_trace) and histogram recordings made through
/// ScopedTimer/TraceSpan/record_latency carry `id` as an exemplar. Nests:
/// the previous trace id is restored on destruction. A zero id is a no-op
/// scope (clears nothing, indexes nothing).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceId id);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceId previous_;
  bool active_ = false;
};

/// Copy out the spans indexed under `id`, ordered by begin time. Empty when
/// the trace is unknown (never seen, or evicted from the bounded index).
std::vector<SpanRecord> spans_for_trace(const TraceId& id);

/// Counters for the bounded per-trace index (for /tracez self-reporting and
/// tests). The index keeps the most recent kMax traces FIFO; older traces
/// are evicted whole, and spans past the per-trace cap are dropped.
struct TraceIndexStats {
  std::size_t traces = 0;            ///< traces currently resident
  std::uint64_t indexed_spans = 0;   ///< spans accepted since clear
  std::uint64_t evicted_traces = 0;  ///< whole traces dropped to make room
  std::uint64_t dropped_spans = 0;   ///< spans past the per-trace cap
};
TraceIndexStats trace_index_stats();

/// Drop the per-trace index (tests / run boundaries).
void clear_trace_index();

/// Record `seconds` into `histogram`, attaching the calling thread's active
/// trace id as an exemplar when one is set. This is the one choke point
/// where latency measurements pick up request identity — use it instead of
/// Histogram::record on any path a traced request can reach. Callers that
/// already hold a fresh timestamp (a timer that just read the clock) pass it
/// as `ts_ns` so the exemplar doesn't cost a second clock read.
void record_latency(Histogram& histogram, double seconds, std::int64_t ts_ns = 0);

/// RAII adoption of a foreign parent span: spans opened on this thread while
/// the scope is alive nest under `parent_id` (typically captured on the
/// submitting thread with current_span_id()). This is how pool workers
/// attribute their spans to the region that fanned them out. No-op when
/// `parent_id` is 0 or tracing is disabled.
class SpanParentScope {
 public:
  explicit SpanParentScope(std::uint64_t parent_id);
  ~SpanParentScope();

  SpanParentScope(const SpanParentScope&) = delete;
  SpanParentScope& operator=(const SpanParentScope&) = delete;

 private:
  std::uint64_t parent_id_ = 0;  // 0 = nothing pushed
};

/// Times a scope into `histogram` (seconds). Resolve the histogram once at
/// the call site and reuse it:
///   static obs::Histogram& h = obs::MetricsRegistry::instance().histogram("agua.x.y");
///   obs::ScopedTimer timer(h);
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), begin_ns_(now_ns()) {}
  /// Convenience: looks the histogram up by name (mutex-guarded; fine for
  /// coarse-grained scopes).
  explicit ScopedTimer(std::string_view name)
      : ScopedTimer(MetricsRegistry::instance().histogram(name)) {}
  ~ScopedTimer() {
    const std::int64_t end_ns = now_ns();
    record_latency(*histogram_, static_cast<double>(end_ns - begin_ns_) * 1e-9, end_ns);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::int64_t begin_ns_;
};

/// A ScopedTimer that additionally captures a SpanRecord and parents any
/// TraceSpan opened while it is alive on the same thread. The span's
/// histogram shares the span name. The record lands in the global span
/// buffer when set_trace_enabled(true), and in the per-trace index when the
/// thread has an active TraceContextScope — either alone is enough to
/// capture the span.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Index this span's record under an additional trace id (on top of the
  /// thread's active one). The serving plane's batch span calls this once
  /// per batch member, so every coalesced request's /tracez?trace=ID view
  /// includes the shared batch execution span.
  void annotate_trace(const TraceId& id);

 private:
  std::string name_;
  Histogram* histogram_;
  std::uint64_t id_ = 0;         // 0 when capture was off at construction
  std::uint64_t parent_id_ = 0;
  std::size_t depth_ = 0;
  std::int64_t begin_ns_ = 0;
  TraceId trace_;                     // thread's active trace at construction
  std::vector<TraceId> extra_traces_; // annotate_trace additions
};

}  // namespace agua::obs
