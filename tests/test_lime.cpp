#include "baselines/lime.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace {

using namespace agua;
using namespace agua::baselines;

TEST(SolveRidge, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  const auto x = solve_ridge({{2, 1}, {1, 3}}, {5, 10}, 0.0);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveRidge, RidgeShrinksSolution) {
  const auto exact = solve_ridge({{1, 0}, {0, 1}}, {4, 4}, 0.0);
  const auto shrunk = solve_ridge({{1, 0}, {0, 1}}, {4, 4}, 1.0);
  EXPECT_NEAR(exact[0], 4.0, 1e-9);
  EXPECT_NEAR(shrunk[0], 2.0, 1e-9);  // (1+1) w = 4
}

TEST(SolveRidge, SingularDirectionIsZeroNotNan) {
  const auto x = solve_ridge({{1, 0}, {0, 0}}, {2, 5}, 0.0);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_FALSE(std::isnan(x[1]));
}

/// A linear "controller": p(class1) = sigmoid(3*x0 - 2*x1).
std::vector<double> linear_controller(const std::vector<double>& x) {
  const double logit = 3.0 * x[0] - 2.0 * x[1] + 0.0 * x[2];
  const double p = 1.0 / (1.0 + std::exp(-logit));
  return {1.0 - p, p};
}

TEST(Lime, RecoversLinearControllerSigns) {
  LimeExplainer lime({1.0, 1.0, 1.0});
  common::Rng rng(1);
  const auto exp = lime.explain(linear_controller, {0.0, 0.0, 0.0}, 1, rng);
  // At the origin, d sigmoid/dx = 0.25 * (3, -2, 0).
  EXPECT_GT(exp.coefficients[0], 0.0);
  EXPECT_LT(exp.coefficients[1], 0.0);
  EXPECT_GT(std::abs(exp.coefficients[0]), std::abs(exp.coefficients[1]));
  EXPECT_LT(std::abs(exp.coefficients[2]), 0.2 * std::abs(exp.coefficients[0]));
}

TEST(Lime, TopFeaturesRankByMagnitude) {
  LimeExplainer lime({1.0, 1.0, 1.0});
  common::Rng rng(2);
  const auto exp = lime.explain(linear_controller, {0.0, 0.0, 0.0}, 1, rng);
  const auto top = exp.top_features(3);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
  EXPECT_EQ(top[2], 2u);
}

TEST(Lime, LocalFitHighForLinearTarget) {
  LimeExplainer lime({1.0, 1.0, 1.0});
  common::Rng rng(3);
  const auto exp = lime.explain(linear_controller, {0.0, 0.0, 0.0}, 1, rng);
  EXPECT_GT(exp.local_fit, 0.95);
}

TEST(Lime, ComplementaryClassesHaveOppositeSigns) {
  LimeExplainer lime({1.0, 1.0, 1.0});
  common::Rng rng(4);
  const auto class1 = lime.explain(linear_controller, {0.1, -0.1, 0.0}, 1, rng);
  const auto class0 = lime.explain(linear_controller, {0.1, -0.1, 0.0}, 0, rng);
  EXPECT_GT(class1.coefficients[0] * class0.coefficients[0], -1.0);
  EXPECT_LT(class0.coefficients[0], 0.0);
  EXPECT_GT(class1.coefficients[0], 0.0);
}

TEST(Lime, ScalesNormalizePerturbations) {
  // Same controller expressed over a feature measured in 100x units: the
  // scaled coefficient should match the unit-scale case.
  auto scaled_controller = [](const std::vector<double>& x) {
    return linear_controller({x[0] / 100.0, x[1], x[2]});
  };
  LimeExplainer lime({100.0, 1.0, 1.0});
  common::Rng rng(5);
  const auto exp = lime.explain(scaled_controller, {0.0, 0.0, 0.0}, 1, rng);
  EXPECT_GT(exp.coefficients[0], 0.0);
  EXPECT_GT(std::abs(exp.coefficients[0]), std::abs(exp.coefficients[1]) * 0.8);
}

TEST(Lime, FormatListsSignedFeatures) {
  LimeExplainer lime({1.0, 1.0, 1.0});
  common::Rng rng(6);
  const auto exp = lime.explain(linear_controller, {0.0, 0.0, 0.0}, 1, rng);
  const std::string text = exp.format({"alpha", "beta", "gamma"}, 2);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("("), std::string::npos);
}

TEST(Lime, DeterministicGivenSeed) {
  LimeExplainer lime({1.0, 1.0, 1.0});
  common::Rng rng_a(7);
  common::Rng rng_b(7);
  const auto a = lime.explain(linear_controller, {0.2, 0.1, -0.3}, 1, rng_a);
  const auto b = lime.explain(linear_controller, {0.2, 0.1, -0.3}, 1, rng_b);
  EXPECT_EQ(a.coefficients, b.coefficients);
}

}  // namespace
