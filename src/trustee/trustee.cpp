#include "trustee/trustee.hpp"

#include <sstream>

namespace agua::trustee {

double fidelity(const std::vector<std::size_t>& controller_outputs,
                const std::vector<std::size_t>& surrogate_outputs) {
  if (controller_outputs.empty() || controller_outputs.size() != surrogate_outputs.size()) {
    return 0.0;
  }
  std::size_t matches = 0;
  for (std::size_t i = 0; i < controller_outputs.size(); ++i) {
    if (controller_outputs[i] == surrogate_outputs[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(controller_outputs.size());
}

std::string TrustReport::summary(const std::vector<std::string>& feature_names) const {
  (void)feature_names;
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "Trustee trust report\n"
     << "  full tree:   " << full_tree.node_count() << " nodes, depth "
     << full_tree.depth() << ", fidelity " << full_fidelity << '\n'
     << "  pruned tree: " << pruned_tree.node_count() << " nodes, depth "
     << pruned_tree.depth() << ", fidelity " << pruned_fidelity << '\n'
     << "  iterations:  " << iterations_run << '\n';
  return os.str();
}

TrusteeExplainer::TrusteeExplainer()
    : TrusteeExplainer([] {
        Options options;
        // Trustee's reference implementation considers every candidate
        // threshold; the DecisionTree default subsampling is a speed knob
        // for other users of the class.
        options.tree.max_thresholds = 0;
        return options;
      }()) {}

TrusteeExplainer::TrusteeExplainer(Options options) : options_(options) {}

TrustReport TrusteeExplainer::train(const std::vector<std::vector<double>>& inputs,
                                    const ControllerFn& controller, std::size_t num_classes,
                                    const std::vector<std::vector<double>>& eval_inputs,
                                    common::Rng& rng) const {
  TrustReport report;
  if (inputs.empty()) return report;

  // Teacher labels for train and eval pools.
  std::vector<std::size_t> labels(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) labels[i] = controller(inputs[i]);
  std::vector<std::size_t> eval_labels(eval_inputs.size());
  for (std::size_t i = 0; i < eval_inputs.size(); ++i) {
    eval_labels[i] = controller(eval_inputs[i]);
  }

  // Hold out a slice of the training pool for candidate selection so the
  // final eval set stays untouched (Trustee's stability criterion).
  const std::size_t holdout = std::max<std::size_t>(1, inputs.size() / 5);
  std::vector<std::vector<double>> validation(inputs.end() - static_cast<std::ptrdiff_t>(holdout),
                                              inputs.end());
  std::vector<std::size_t> validation_labels(labels.end() - static_cast<std::ptrdiff_t>(holdout),
                                             labels.end());
  const std::size_t pool_size = inputs.size() - holdout;

  double best_validation_fidelity = -1.0;
  DecisionTree best_tree;
  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    // Bootstrap a teacher-labeled sample (dataset augmentation step).
    const auto sample_size = static_cast<std::size_t>(
        options_.sample_fraction * static_cast<double>(pool_size));
    std::vector<std::vector<double>> sample;
    std::vector<std::size_t> sample_labels;
    sample.reserve(sample_size);
    sample_labels.reserve(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(pool_size) - 1));
      sample.push_back(inputs[pick]);
      sample_labels.push_back(labels[pick]);
    }
    DecisionTree candidate;
    candidate.fit(sample, sample_labels, num_classes, options_.tree);
    const double candidate_fidelity =
        fidelity(validation_labels, candidate.predict_batch(validation));
    if (candidate_fidelity > best_validation_fidelity) {
      best_validation_fidelity = candidate_fidelity;
      best_tree = std::move(candidate);
    }
    ++report.iterations_run;
  }

  report.full_tree = std::move(best_tree);
  report.pruned_tree = report.full_tree.pruned_top_k(options_.top_k_branches);
  if (!eval_inputs.empty()) {
    report.full_fidelity =
        fidelity(eval_labels, report.full_tree.predict_batch(eval_inputs));
    report.pruned_fidelity =
        fidelity(eval_labels, report.pruned_tree.predict_batch(eval_inputs));
  }
  return report;
}

}  // namespace agua::trustee
