
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/agua_cli.cpp" "examples/CMakeFiles/agua_cli.dir/agua_cli.cpp.o" "gcc" "examples/CMakeFiles/agua_cli.dir/agua_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/agua_bundles.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/agua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/agua_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/agua_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/ddos/CMakeFiles/agua_ddos.dir/DependInfo.cmake"
  "/root/repo/build/src/concepts/CMakeFiles/agua_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/agua_text.dir/DependInfo.cmake"
  "/root/repo/build/src/trustee/CMakeFiles/agua_trustee.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/agua_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/agua_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/agua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
