// The deterministic "LLM" substitute (see DESIGN.md):
// utilities to render controller states into the structured fill-in-the-blank
// description of Fig. 15/16. Each application module supplies feature groups
// and detected concepts; this module turns trends into template paragraphs.
//
// A temperature-controlled noise model (synonym swaps, concept omission,
// ordering jitter) reproduces LLM output variability for the robustness
// experiments (Fig. 12a), and a "human annotator" phrasing variant supports
// the description-validation experiment (Fig. 14 / Appendix A.2).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace agua::text {

/// Qualitative trend classes recognized by the template.
enum class Trend {
  kStable,
  kIncreasing,
  kDecreasing,
  kRapidlyIncreasing,
  kRapidlyDecreasing,
  kFluctuating,
  kVolatile,
};

/// Rendering options for a description.
struct DescriberOptions {
  /// 0 = fully deterministic; >0 enables synonym/omission noise (needs rng).
  double temperature = 0.0;
  common::Rng* rng = nullptr;
  /// Use the alternate "human annotator" vocabulary (Fig. 14).
  bool human_style = false;
};

/// One named time series inside a feature group, with its full-scale value
/// (the "max=" hints of Fig. 15) used to normalize slopes and volatility.
struct FeatureSeries {
  std::string name;
  std::vector<double> values;
  double scale = 1.0;
};

/// Classify the trend of a value window. `scale` normalizes both the
/// regression slope and the standard deviation so thresholds are unitless.
Trend classify_trend(const std::vector<double>& values, double scale);

/// English phrase for a trend, honouring synonym noise and the human variant.
std::string trend_phrase(Trend trend, const DescriberOptions& opts);

/// Render one group paragraph following the Fig. 15 template: initial /
/// middle / end patterns plus an overall trend sentence. The overall
/// condition wording is derived from the overall trend and the group name.
std::string describe_group(const std::string& group_name,
                           const std::vector<FeatureSeries>& features,
                           const DescriberOptions& opts);

/// Render the closing "Altogether ... correlates with the key concept of ..."
/// summary. Under noise, concepts may be reordered or (rarely) dropped,
/// mirroring run-to-run LLM variation.
std::string concept_correlation_summary(const std::vector<std::string>& concepts,
                                        const DescriberOptions& opts);

/// First / middle / last third of a series (each non-empty when possible).
std::vector<std::vector<double>> split_thirds(const std::vector<double>& values);

}  // namespace agua::text
