file(REMOVE_RECURSE
  "libagua_concepts.a"
)
