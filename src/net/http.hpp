// Minimal dependency-free HTTP/1.1 plumbing over POSIX sockets — just enough
// protocol for the telemetry plane (obs/telemetry_server.hpp): an embedded
// server that binds a loopback port, parses request line + headers, and
// dispatches to registered handlers; and a tiny blocking client used by the
// tests and the scrape-latency benchmarks.
//
// Deliberate non-goals: TLS, keep-alive, chunked encoding, virtual hosts.
// Every connection carries exactly one request (head plus an optional
// Content-Length body, for POST endpoints like /explain) and is closed after
// the response (`Connection: close`). Memory stays naturally bounded: one
// head buffer capped at Options::max_request_bytes and one body buffer
// capped at Options::max_body_bytes per in-flight connection.
//
// By default the server is a single blocking accept loop on one dedicated
// thread — no connection table. Options::connection_threads > 1 adds a fixed
// pool of connection workers fed from the accept loop, so several requests
// can be in flight at once (the explanation-serving plane needs this for
// request coalescing); handlers must then be safe to run concurrently with
// each other.
//
// Layering: net sits directly above common (like obs) and is
// observability-free; the instrumented telemetry handlers live one layer up
// in src/obs. Handlers run on server-owned threads, so anything they touch
// must be thread-safe against the rest of the process — the obs layer's
// snapshot API (obs/snapshot.hpp) exists exactly for that.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace agua::net {

/// W3C trace context for one request: a 128-bit trace id plus the upstream
/// parent span id, parsed from an incoming `traceparent` header
/// (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`) or generated
/// server-side when the client sent none. This is protocol plumbing, not
/// observability — the net layer only carries the id; the obs layer decides
/// what to record against it. Every response echoes the id back as
/// `X-Agua-Trace-Id` so a client (or an operator reading curl -i output) can
/// join the response to /tracez and to metric exemplars.
struct TraceContext {
  std::uint64_t trace_hi = 0;    ///< high 64 bits of the 128-bit trace id
  std::uint64_t trace_lo = 0;    ///< low 64 bits
  std::uint64_t parent_span = 0; ///< upstream parent-id (0 when generated)
  bool sampled = true;           ///< traceparent flags bit 0
  bool from_header = false;      ///< parsed from traceparent vs generated

  /// All-zero trace ids are invalid per the W3C spec.
  bool valid() const { return (trace_hi | trace_lo) != 0; }
  /// The trace id as 32 lower-case hex characters (the wire format).
  std::string trace_id_hex() const;
};

/// Parse a `traceparent` header value. Returns false (leaving `out`
/// untouched) on any syntax violation, an unknown version byte of 0xff, or
/// an all-zero trace id — the caller then generates a fresh context, per the
/// spec's "restart the trace" guidance.
bool parse_traceparent(std::string_view value, TraceContext& out);

/// Generate a fresh sampled trace context from the process-local seeded
/// stream (splitmix64 over seed + counter). Never returns an invalid id.
TraceContext generate_trace_context();

/// Reseed the generated-trace-id stream (and reset its counter) so a run's
/// server-generated ids are reproducible from the experiment seed.
void seed_trace_ids(std::uint64_t seed);

/// One parsed request. Header names are lower-cased at parse time; the path
/// is percent-decoded, the query string is kept raw (decode per key via
/// query_param).
struct HttpRequest {
  std::string method;   ///< upper-case, e.g. "GET"
  std::string path;     ///< decoded path without the query, e.g. "/metrics"
  std::string query;    ///< raw query string after '?' (may be empty)
  std::string version;  ///< e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  ///< lower-cased names
  std::string body;     ///< Content-Length bytes (empty when none was sent)
  /// Client address (numeric IP, no port), for per-client accounting such as
  /// the serving plane's rate limiter. Empty when the request never crossed
  /// a socket (tests / benchmarks calling handlers directly).
  std::string peer;
  /// Request-scoped trace context: parsed from `traceparent` when present
  /// and well-formed, otherwise generated. Always valid() inside a handler.
  TraceContext trace;

  /// First header with the given lower-case name, or nullptr.
  const std::string* header(std::string_view lower_name) const;
  /// Percent-decoded value of `key` in the query string, or `fallback` when
  /// absent/empty.
  std::string query_param(std::string_view key, std::string fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Additional response headers (e.g. "X-Agua-Cache: hit"). Names are sent
  /// verbatim; keep Content-Type/Content-Length/Connection out of here.
  std::vector<std::pair<std::string, std::string>> extra_headers;

  static HttpResponse text(int status, std::string body);
  static HttpResponse json(int status, std::string body);
};

/// Standard reason phrase for the handful of status codes this layer emits
/// ("OK", "Not Found", ...); "Unknown" for anything else.
std::string_view status_reason(int status);

/// Percent-decode a URL component (%XX and '+' → space). Invalid escapes are
/// kept verbatim.
std::string url_decode(std::string_view s);

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";  ///< loopback by default, on purpose
  std::uint16_t port = 0;                  ///< 0 = kernel-assigned ephemeral port
  int backlog = 16;                        ///< listen(2) queue bound
  std::size_t max_request_bytes = 16 * 1024;  ///< head limit; larger → 431
  std::size_t max_body_bytes = 1024 * 1024;   ///< body limit; larger → 413
  /// Connection handling: 1 (default) serves one connection at a time inline
  /// on the accept thread; N > 1 runs a fixed pool of N connection workers so
  /// up to N requests are in flight concurrently (handlers must be
  /// thread-safe). Accepted connections beyond the worker queue's bound are
  /// answered 503 immediately — load is shed, never buffered unboundedly.
  std::size_t connection_threads = 1;
  int io_timeout_ms = 5000;  ///< per-recv/send socket timeout
  /// Absolute budget for receiving one request head. SO_RCVTIMEO alone resets
  /// on every byte, so a client trickling one byte per interval (slowloris)
  /// would pin the accept loop forever; this deadline is measured from
  /// accept and answers 408 when it expires, however chatty the client.
  int request_deadline_ms = 5000;
  /// Per-request handler budget; 0 (default) runs handlers inline with no
  /// deadline. When positive, the handler runs on a helper thread and an
  /// overrun answers 503 — the stuck handler's eventual result is discarded
  /// (its thread is left to finish in the background), so handlers must not
  /// hold locks the server thread needs.
  int handler_deadline_ms = 0;
};

/// Counter snapshot for self-reporting (/healthz) and tests. `degraded` is
/// true while the accept loop is backing off from resource exhaustion
/// (EMFILE & friends) — the server is alive but shedding load.
struct HttpServerStats {
  std::uint64_t requests = 0;          ///< responses written (any status)
  std::uint64_t request_timeouts = 0;  ///< 408s (slow request heads)
  std::uint64_t handler_timeouts = 0;  ///< 503s (handler deadline overruns)
  std::uint64_t accept_retries = 0;    ///< backoff rounds in the accept loop
  std::uint64_t write_errors = 0;      ///< responses that failed to send
  std::uint64_t rejected = 0;          ///< 503s from a full connection queue
  bool degraded = false;
};

/// Blocking HTTP server: one accept loop on a dedicated thread, one request
/// per connection, handlers dispatched by exact (method, path) match.
/// Registration must finish before start(); after that the handler table is
/// immutable, so dispatch needs no lock. stop() (also run by the destructor)
/// wakes the accept loop via a self-pipe and joins the thread — no request
/// is ever abandoned mid-response.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using Options = HttpServerOptions;

  explicit HttpServer(Options options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for exact (method, path). Must be called before
  /// start(). A path registered under a different method yields 405 (with an
  /// Allow header); an unknown path yields 404.
  void handle(std::string method, std::string path, Handler handler);

  /// Bind + listen + spawn the accept thread. Returns false (and sets
  /// last_error()) on any socket failure. Calling start() twice is an error.
  bool start();

  /// Graceful shutdown: finish the in-flight request, stop accepting, join.
  /// Idempotent; safe to call from any thread except a handler.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }
  const std::string& last_error() const { return last_error_; }
  /// Requests answered so far (any status), for tests and self-reporting.
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Resilience counters + degraded flag; safe from any thread.
  HttpServerStats stats() const;

 private:
  void accept_loop();
  void connection_worker();
  void dispatch_connection(int fd);
  void serve_connection(int fd);
  HttpResponse run_handler(const Handler& handler, const HttpRequest& request);

  Options options_;
  std::vector<std::pair<std::pair<std::string, std::string>, Handler>> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> request_timeouts_{0};
  std::atomic<std::uint64_t> handler_timeouts_{0};
  std::atomic<std::uint64_t> accept_retries_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<bool> degraded_{false};
  // Connection-worker pool (connection_threads > 1): accepted fds queue here
  // and workers drain the queue; guarded by conn_mutex_.
  std::vector<std::thread> conn_workers_;
  std::vector<int> conn_queue_;
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  bool conn_shutdown_ = false;  // guarded by conn_mutex_
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  std::uint16_t port_ = 0;
  std::string last_error_;
};

/// Minimal blocking client response (for tests / benchmarks).
struct HttpClientResponse {
  int status = 0;
  std::string content_type;
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  ///< lower-cased names

  /// First header with the given lower-case name, or `fallback`.
  std::string header(std::string_view lower_name, std::string fallback = "") const;
};

/// One blocking request to host:port. `target` is the raw request target
/// (path + optional query, e.g. "/eventsz?n=5"). A non-empty `body` is sent
/// with a Content-Length header and `content_type`; `headers` are extra
/// request headers sent verbatim (e.g. {"traceparent", ...} or an Accept for
/// /metrics content negotiation). Returns false on connect / I/O / parse
/// failure. Only used against our own server, so the parser is as minimal
/// as the server's.
bool http_request(const std::string& method, const std::string& host,
                  std::uint16_t port, const std::string& target,
                  HttpClientResponse& out, int timeout_ms = 5000,
                  const std::string& body = std::string(),
                  const std::string& content_type = "application/json",
                  const std::vector<std::pair<std::string, std::string>>& headers = {});

/// Convenience GET.
bool http_get(const std::string& host, std::uint16_t port, const std::string& target,
              HttpClientResponse& out, int timeout_ms = 5000);

/// Convenience POST with a JSON body.
bool http_post(const std::string& host, std::uint16_t port, const std::string& target,
               const std::string& body, HttpClientResponse& out, int timeout_ms = 5000);

}  // namespace agua::net
