#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace {

using namespace agua::common;

TEST(StringUtil, ToLower) { EXPECT_EQ(to_lower("AbC dEf"), "abc def"); }

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyz", "q", "r"), "xyz");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Csv, RoundTrip) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  doc.rows = {{1.0, 2.0}, {3.5, -4.25}};
  const CsvDocument parsed = parse_csv(to_csv(doc));
  ASSERT_EQ(parsed.header, doc.header);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.rows[1][1], -4.25);
}

TEST(Csv, ColumnLookup) {
  CsvDocument doc = parse_csv("a,b\n1,2\n3,4\n");
  EXPECT_EQ(doc.column("b"), 1u);
  EXPECT_EQ(doc.column("zzz"), static_cast<std::size_t>(-1));
  const auto values = doc.column_values("b");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 2.0);
  EXPECT_DOUBLE_EQ(values[1], 4.0);
}

TEST(Csv, RaggedRowsPadded) {
  const CsvDocument doc = parse_csv("a,b,c\n1,2\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0].size(), 3u);
  EXPECT_DOUBLE_EQ(doc.rows[0][2], 0.0);
}

TEST(Csv, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"v"};
  doc.rows = {{42.0}};
  const std::string path = testing::TempDir() + "/agua_csv_test.csv";
  ASSERT_TRUE(write_csv_file(path, doc));
  const CsvDocument loaded = read_csv_file(path);
  ASSERT_EQ(loaded.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.rows[0][0], 42.0);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, AsciiBarSignsAndBounds) {
  const std::string pos = ascii_bar(1.0, 1.0, 10);
  const std::string neg = ascii_bar(-1.0, 1.0, 10);
  const std::string zero = ascii_bar(0.0, 1.0, 10);
  EXPECT_NE(pos.find('#'), std::string::npos);
  EXPECT_NE(neg.find('#'), std::string::npos);
  EXPECT_EQ(zero.find('#'), std::string::npos);
  // Overflow values are clamped, not out-of-bounds.
  EXPECT_NO_THROW(ascii_bar(100.0, 1.0, 10));
}

}  // namespace
