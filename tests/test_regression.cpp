#include "core/regression.hpp"

#include <gtest/gtest.h>

namespace {

using namespace agua;
using namespace agua::core;

TEST(Regression, BinCentersSpanRange) {
  const auto bins = make_bins(0.0, 10.0, 5);
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_DOUBLE_EQ(bins.front(), 1.0);
  EXPECT_DOUBLE_EQ(bins.back(), 9.0);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    EXPECT_DOUBLE_EQ(bins[i] - bins[i - 1], 2.0);
  }
}

TEST(Regression, BinOfClampsAndPartitions) {
  EXPECT_EQ(bin_of(-5.0, 0.0, 10.0, 5), 0u);
  EXPECT_EQ(bin_of(99.0, 0.0, 10.0, 5), 4u);
  EXPECT_EQ(bin_of(0.5, 0.0, 10.0, 5), 0u);
  EXPECT_EQ(bin_of(9.5, 0.0, 10.0, 5), 4u);
  EXPECT_EQ(bin_of(5.0, 0.0, 10.0, 5), 2u);
}

TEST(Regression, BinOfRoundTripsWithCenters) {
  const auto bins = make_bins(-2.0, 2.0, 9);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    EXPECT_EQ(bin_of(bins[i], -2.0, 2.0, 9), i);
  }
}

TEST(Regression, ExpectedOutputIsDotProduct) {
  EXPECT_DOUBLE_EQ(expected_output({0.5, 0.5}, {2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(expected_output({1.0, 0.0}, {2.0, 4.0}), 2.0);
  // Mismatched lengths use the common prefix.
  EXPECT_DOUBLE_EQ(expected_output({1.0}, {2.0, 4.0}), 2.0);
}

TEST(Regression, FidelityWithinToleranceOfSelf) {
  // A surrogate explaining itself is perfectly faithful numerically.
  common::Rng rng(1);
  ConceptMapping::Config cm;
  cm.embedding_dim = 4;
  cm.num_concepts = 3;
  cm.num_levels = 3;
  ConceptMapping mapping(cm, rng);
  OutputMapping::Config om;
  om.concept_dim = 9;
  om.num_outputs = 5;
  OutputMapping output(om, rng);
  AguaModel model(concepts::cc_concepts().prefix(3), std::move(mapping),
                  std::move(output));

  const auto bins = make_bins(0.5, 2.0, 5);
  Dataset dataset;
  dataset.num_outputs = 5;
  for (int i = 0; i < 30; ++i) {
    Sample s;
    s.embedding = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1),
                   rng.uniform(-1, 1)};
    s.output_probs = model.output_probs(s.embedding);
    s.output_class = common::argmax(s.output_probs);
    dataset.samples.push_back(std::move(s));
  }
  EXPECT_DOUBLE_EQ(regression_fidelity(model, dataset, bins, 1e-9), 1.0);
}

TEST(Regression, FidelityDropsWithTightTolerance) {
  common::Rng rng(2);
  ConceptMapping::Config cm;
  cm.embedding_dim = 4;
  cm.num_concepts = 3;
  cm.num_levels = 3;
  ConceptMapping mapping(cm, rng);
  OutputMapping::Config om;
  om.concept_dim = 9;
  om.num_outputs = 5;
  OutputMapping output(om, rng);
  AguaModel model(concepts::cc_concepts().prefix(3), std::move(mapping),
                  std::move(output));
  const auto bins = make_bins(0.5, 2.0, 5);
  Dataset dataset;
  dataset.num_outputs = 5;
  for (int i = 0; i < 30; ++i) {
    Sample s;
    s.embedding = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1),
                   rng.uniform(-1, 1)};
    // Controller outputs that deviate from the surrogate's.
    s.output_probs = {0.9, 0.1, 0.0, 0.0, 0.0};
    s.output_class = 0;
    dataset.samples.push_back(std::move(s));
  }
  const double loose = regression_fidelity(model, dataset, bins, 10.0);
  const double tight = regression_fidelity(model, dataset, bins, 1e-6);
  EXPECT_DOUBLE_EQ(loose, 1.0);
  EXPECT_LT(tight, 0.5);
}

}  // namespace
