#include "common/serialize.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace agua::common {
namespace {

constexpr std::uint32_t kMagic = 0x41475541;  // "AGUA"
// Guard against hostile/corrupt length prefixes blowing up allocations.
constexpr std::uint64_t kMaxContainer = 1ULL << 32;

}  // namespace

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_u64(std::uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_double(double v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_doubles(const std::vector<double>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

double BinaryReader::read_double() {
  double v = 0.0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (!in_ || size > kMaxContainer) {
    in_.setstate(std::ios::failbit);
    return {};
  }
  std::string s(size, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(size));
  return s;
}

std::vector<double> BinaryReader::read_doubles() {
  const std::uint64_t size = read_u64();
  if (!in_ || size > kMaxContainer / sizeof(double)) {
    in_.setstate(std::ios::failbit);
    return {};
  }
  std::vector<double> v(size);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(size * sizeof(double)));
  return v;
}

void write_archive_header(BinaryWriter& w, std::uint32_t version) {
  w.write_u32(kMagic);
  w.write_u32(version);
}

std::uint32_t read_archive_header(BinaryReader& r) {
  const std::uint32_t magic = r.read_u32();
  const std::uint32_t version = r.read_u32();
  if (!r.ok() || magic != kMagic) return 0;
  return version;
}

}  // namespace agua::common
