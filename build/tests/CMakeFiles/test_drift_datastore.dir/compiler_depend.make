# Empty compiler generated dependencies file for test_drift_datastore.
# This may be replaced when dependencies are built.
