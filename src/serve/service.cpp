#include "serve/service.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/explain.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/json.hpp"

namespace agua::serve {
namespace {

using obs::detail::json_escape;
using obs::detail::json_number;

constexpr std::size_t kFactual = static_cast<std::size_t>(-1);

std::int64_t steady_us(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp.time_since_epoch())
      .count();
}

/// Non-negative integer from a JSON number, rejecting fractions and
/// anything a size_t cannot hold.
bool to_index(const JsonValue& v, std::size_t& out) {
  if (!v.is_number() || !std::isfinite(v.number) || v.number < 0) return false;
  const double rounded = std::floor(v.number);
  if (rounded != v.number || rounded > 9e15) return false;
  out = static_cast<std::size_t>(rounded);
  return true;
}

const char* level_label(std::size_t level) {
  static const char* kLabels[] = {"low", "medium", "high"};
  return kLabels[level < 3 ? level : 2];
}

/// Rendered /explain body. Every value is either an integer or a %.17g
/// double (json_number), so identical explanations render byte-identically —
/// the invariant the result cache's "repeated request → same bytes"
/// guarantee rests on.
std::string render_explanation(const core::Explanation& exp, const ModelInfo& info,
                               std::size_t top_k) {
  std::ostringstream os;
  os << "{\"fingerprint\":\"" << json_escape(info.fingerprint)
     << "\",\"generation\":" << info.generation
     << ",\"output_class\":" << exp.output_class
     << ",\"predicted_class\":" << exp.predicted_class
     << ",\"output_probability\":" << json_number(exp.output_probability)
     << ",\"top\":[";
  const std::vector<std::size_t> top = exp.top_concepts(top_k);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const std::size_t c = top[i];
    if (i > 0) os << ',';
    const std::string name = c < exp.concept_names.size()
                                 ? exp.concept_names[c]
                                 : "concept-" + std::to_string(c);
    const std::size_t level = c < exp.dominant_levels.size() ? exp.dominant_levels[c] : 0;
    os << "{\"concept\":" << c << ",\"name\":\"" << json_escape(name)
       << "\",\"weight\":" << json_number(exp.concept_weights[c])
       << ",\"signed_contribution\":"
       << json_number(exp.signed_concept_contributions[c])
       << ",\"dominant_level\":\"" << level_label(level) << "\"}";
  }
  os << "],\"concept_weights\":[";
  for (std::size_t c = 0; c < exp.concept_weights.size(); ++c) {
    if (c > 0) os << ',';
    os << json_number(exp.concept_weights[c]);
  }
  os << "]}\n";
  return os.str();
}

}  // namespace

ExplainService::ExplainService(ExplainServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      overload_(options.overload) {}

ExplainService::~ExplainService() { stop(); }

ModelInfo ExplainService::install_model(core::AguaModel model, std::string source) {
  std::string fingerprint = core::model_fingerprint(model);
  const std::size_t embedding_dim = model.concept_mapping().config().embedding_dim;
  auto entry = std::make_shared<ModelEntry>(ModelEntry{
      std::move(model), ModelInfo{0, std::move(fingerprint), std::move(source)},
      embedding_dim});
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    entry->info.generation = next_generation_++;
    // Remember the outgoing fingerprint: during a brownout the service may
    // serve its still-cached (slightly stale) renderings rather than recompute.
    if (model_ && model_->info.fingerprint != entry->info.fingerprint) {
      previous_fingerprint_ = model_->info.fingerprint;
    }
    model_ = entry;
  }
  obs::MetricsRegistry::instance().gauge("agua.serve.model.generation")
      .set(static_cast<double>(entry->info.generation));
  obs::event_log().append(
      "serve.model.swap",
      {{"generation", static_cast<double>(entry->info.generation)}});
  return entry->info;
}

void ExplainService::set_rows(std::vector<std::vector<double>> rows) {
  auto shared = std::make_shared<const std::vector<std::vector<double>>>(std::move(rows));
  std::lock_guard<std::mutex> lock(model_mutex_);
  rows_ = std::move(shared);
}

void ExplainService::set_default_model_path(std::string path) {
  std::lock_guard<std::mutex> lock(model_mutex_);
  default_model_path_ = std::move(path);
}

std::string ExplainService::status_section() const {
  std::shared_ptr<ModelEntry> entry;
  std::size_t rows = 0;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    entry = model_;
    if (rows_) rows = rows_->size();
  }
  std::ostringstream os;
  if (!entry) {
    os << "model: (none installed)\n";
  } else {
    os << "model: generation " << entry->info.generation << ", fingerprint "
       << entry->info.fingerprint << ", source " << entry->info.source << ", "
       << entry->embedding_dim << "-dim, " << entry->model.num_concepts()
       << " concepts, " << rows << " rows\n";
  }
  const CacheStats cache = cache_.stats();
  os << "cache: " << cache.entries << "/" << cache.capacity << " entries ("
     << cache.shards << " shards), hits " << cache.hits << ", misses " << cache.misses
     << ", evictions " << cache.evictions << "\n";
  os << "batcher: max_batch " << options_.max_batch << ", linger "
     << options_.batch_linger_us << " us, queue " << options_.queue_capacity
     << ", deadline " << options_.request_deadline_ms << " ms\n";
  return os.str();
}

std::string ExplainService::index_lines() {
  return
      "  POST /explain       concept explanation for one input (docs/API.md)\n"
      "  GET  /modelz        installed model identity + serving counters\n"
      "  POST /reloadz       hot-swap the model from an archive file\n";
}

void ExplainService::mount(net::HttpServer& http) {
  http.handle("POST", "/explain",
              [this](const net::HttpRequest& r) { return handle_explain(r); });
  http.handle("GET", "/modelz",
              [this](const net::HttpRequest& r) { return handle_modelz(r); });
  http.handle("POST", "/reloadz",
              [this](const net::HttpRequest& r) { return handle_reloadz(r); });
  start();
}

void ExplainService::start() {
  if (mounted_.exchange(true, std::memory_order_acq_rel)) return;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void ExplainService::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) {
      // Already stopped; nothing left to join.
      if (!dispatcher_.joinable()) return;
    }
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Anything still queued can never be served now.
  std::deque<std::shared_ptr<Pending>> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    leftovers.swap(queue_);
  }
  for (const std::shared_ptr<Pending>& pending : leftovers) {
    fulfill(*pending, error_response(503, "shutting_down",
                                     "serving plane is shutting down"));
  }
}

std::optional<ModelInfo> ExplainService::model_info() const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  if (!model_) return std::nullopt;
  return model_->info;
}

void ExplainService::fulfill(Pending& pending, net::HttpResponse response) {
  {
    std::lock_guard<std::mutex> lock(pending.mutex);
    pending.response = std::move(response);
    pending.done = true;
  }
  pending.cv.notify_all();
}

net::HttpResponse ExplainService::handle_explain(const net::HttpRequest& request) {
  // Activate the request's trace context for the whole handler: the
  // agua.serve.request span (and any span below it) lands in the per-trace
  // index, and its latency recording carries the trace id as an exemplar.
  const obs::TraceId trace{request.trace.trace_hi, request.trace.trace_lo};
  const obs::TraceContextScope trace_scope(trace);
  const std::int64_t begin_ns = obs::now_ns();
  net::HttpResponse response;
  {
    obs::TraceSpan span("agua.serve.request");
    response = handle_explain_inner(request, trace);
  }
  obs::slo_observe("/explain", static_cast<double>(obs::now_ns() - begin_ns) * 1e-9,
                   response.status);
  return response;
}

net::HttpResponse ExplainService::handle_explain_inner(const net::HttpRequest& request,
                                                       const obs::TraceId& trace) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::instance();
  metrics.counter("agua.serve.requests").add(1);
  const std::int64_t admit_ns = obs::now_ns();
  overload_.maybe_evaluate_brownout(admit_ns);

  // Rate limiting runs before any parsing: a flooding client must not buy
  // JSON parsing with requests that will be refused anyway.
  if (auto limited = overload_.check_rate_limit(request, admit_ns)) {
    return std::move(*limited);
  }

  const JsonParseResult parsed = json_parse(request.body);
  if (!parsed.ok) {
    return error_response(400, "bad_request", "malformed JSON: " + parsed.error);
  }
  if (!parsed.value.is_object()) {
    return error_response(400, "bad_request", "request body must be a JSON object");
  }

  // Snapshot the model + rows once; everything below works on this snapshot
  // even if a hot-swap lands mid-request.
  std::shared_ptr<ModelEntry> entry;
  std::shared_ptr<const std::vector<std::vector<double>>> rows;
  std::string previous_fingerprint;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    entry = model_;
    rows = rows_;
    previous_fingerprint = previous_fingerprint_;
  }
  if (!entry) return error_response(503, "no_model", "no model installed");
  const std::size_t C = entry->model.num_concepts();

  // Resolve the input: inline features xor a datastore row id.
  const JsonValue* input = parsed.value.find("input");
  const JsonValue* row = parsed.value.find("row");
  if ((input == nullptr) == (row == nullptr)) {
    return error_response(400, "bad_request",
                          "provide exactly one of \"input\" or \"row\"");
  }
  std::vector<double> embedding;
  if (input != nullptr) {
    if (!input->is_array()) {
      return error_response(400, "bad_request", "\"input\" must be an array of numbers");
    }
    embedding.reserve(input->array.size());
    for (const JsonValue& v : input->array) {
      if (!v.is_number()) {
        return error_response(400, "bad_request",
                              "\"input\" must be an array of numbers");
      }
      embedding.push_back(v.number);
    }
  } else {
    std::size_t index = 0;
    if (!to_index(*row, index)) {
      return error_response(400, "bad_request", "\"row\" must be a non-negative integer");
    }
    if (!rows || index >= rows->size()) {
      return error_response(404, "not_found", "row id out of range");
    }
    embedding = (*rows)[index];
  }
  if (embedding.size() != entry->embedding_dim) {
    return error_response(400, "bad_request",
                          "input has " + std::to_string(embedding.size()) +
                              " features, model expects " +
                              std::to_string(entry->embedding_dim));
  }

  // Factual by default; "output_class" asks the counterfactual question.
  std::size_t output_class = kFactual;
  if (const JsonValue* target = parsed.value.find("output_class")) {
    if (!to_index(*target, output_class)) {
      return error_response(400, "bad_request",
                            "\"output_class\" must be a non-negative integer");
    }
    if (output_class >= entry->model.num_outputs()) {
      return error_response(400, "bad_request",
                            "\"output_class\" out of range (model has " +
                                std::to_string(entry->model.num_outputs()) +
                                " outputs)");
    }
  }
  std::size_t top_k = 5;
  if (const JsonValue* k = parsed.value.find("top_k")) {
    if (!to_index(*k, top_k) || top_k == 0) {
      return error_response(400, "bad_request", "\"top_k\" must be a positive integer");
    }
    if (top_k > C) top_k = C;
  }
  // Brownout tier >= 1 shrinks the answer to shed rendering + fan-out work;
  // the response says so via X-Agua-Degraded.
  const int tier = overload_.brownout_tier();
  if (tier >= 1) top_k = overload_.effective_top_k(top_k);

  // Cache key: exact bytes of everything the rendered body depends on. The
  // fingerprint-free suffix is kept separate so a brownout can re-probe the
  // cache under the pre-swap model's fingerprint.
  std::string suffix;
  suffix.reserve(32 + embedding.size() * sizeof(double));
  suffix += '\x1f';
  suffix += output_class == kFactual ? std::string("f") : "c" + std::to_string(output_class);
  suffix += '\x1f';
  suffix += std::to_string(top_k);
  suffix += '\x1f';
  suffix.append(reinterpret_cast<const char*>(embedding.data()),
                embedding.size() * sizeof(double));
  std::string key = entry->info.fingerprint + suffix;

  std::string cached_body;
  if (cache_.get(key, cached_body)) {
    metrics.counter("agua.serve.cache.hits").add(1);
    net::HttpResponse response = net::HttpResponse::json(200, std::move(cached_body));
    response.extra_headers.emplace_back("X-Agua-Cache", "hit");
    if (tier >= 1) {
      response.extra_headers.emplace_back("X-Agua-Degraded",
                                          "brownout-tier" + std::to_string(tier));
    }
    return response;
  }
  if (tier >= 1 && overload_.stale_allowed() && !previous_fingerprint.empty() &&
      cache_.get(previous_fingerprint + suffix, cached_body)) {
    // Degraded mode: an answer rendered by the pre-swap model is slightly
    // stale but well-formed, and serving it sheds a whole fan-out of work.
    metrics.counter("agua.serve.cache.hits").add(1);
    metrics.counter("agua.overload.stale_served").add(1);
    net::HttpResponse response = net::HttpResponse::json(200, std::move(cached_body));
    response.extra_headers.emplace_back("X-Agua-Cache", "hit");
    response.extra_headers.emplace_back(
        "X-Agua-Degraded", "brownout-tier" + std::to_string(tier) + ",stale");
    return response;
  }
  metrics.counter("agua.serve.cache.misses").add(1);

  // Overload gates, cheapest rejection first: CoDel shed while the queue has
  // a standing backlog, then the breaker while the fan-out is presumed sick.
  // Both run after the cache probes on purpose — cached answers stay
  // servable however overloaded the batcher is.
  bool queue_empty = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_empty = queue_.empty();
  }
  if (auto shed = overload_.check_admission(admit_ns, queue_empty)) {
    return std::move(*shed);
  }
  bool breaker_probe = false;
  if (auto open = overload_.check_breaker(admit_ns, breaker_probe)) {
    return std::move(*open);
  }

  auto pending = std::make_shared<Pending>();
  pending->embedding = std::move(embedding);
  pending->output_class = output_class;
  pending->top_k = top_k;
  pending->cache_key = std::move(key);
  pending->trace = trace;
  pending->enqueued = std::chrono::steady_clock::now();
  pending->deadline =
      pending->enqueued + std::chrono::milliseconds(options_.request_deadline_ms);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) {
      if (breaker_probe) overload_.breaker().abort_probe();
      return error_response(503, "shutting_down", "serving plane is shutting down");
    }
    if (queue_.size() >= overload_.effective_queue_capacity(options_.queue_capacity)) {
      if (breaker_probe) overload_.breaker().abort_probe();
      metrics.counter("agua.serve.queue_full").add(1);
      return error_response(503, "queue_full", "admission queue full", 1000);
    }
    queue_.push_back(pending);
    metrics.gauge("agua.overload.queue_depth").set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_all();

  std::unique_lock<std::mutex> lock(pending->mutex);
  if (!pending->cv.wait_until(lock, pending->deadline, [&] { return pending->done; })) {
    // The dispatcher may still render (and cache) this slot; only the
    // connection stops waiting.
    pending->abandoned.store(true, std::memory_order_relaxed);
    metrics.counter("agua.serve.deadline_expired").add(1);
    return error_response(408, "deadline_expired", "explanation deadline expired");
  }
  net::HttpResponse response = std::move(pending->response);
  if (response.status == 200 && tier >= 1) {
    response.extra_headers.emplace_back("X-Agua-Degraded",
                                        "brownout-tier" + std::to_string(tier));
  }
  return response;
}

net::HttpResponse ExplainService::handle_modelz(const net::HttpRequest&) {
  std::shared_ptr<ModelEntry> entry;
  std::size_t rows = 0;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    entry = model_;
    if (rows_) rows = rows_->size();
  }
  if (!entry) return error_response(503, "no_model", "no model installed");
  const CacheStats cache = cache_.stats();
  std::ostringstream os;
  os << "{\"generation\":" << entry->info.generation << ",\"fingerprint\":\""
     << json_escape(entry->info.fingerprint) << "\",\"source\":\""
     << json_escape(entry->info.source) << "\",\"embedding_dim\":" << entry->embedding_dim
     << ",\"num_concepts\":" << entry->model.num_concepts()
     << ",\"num_levels\":" << entry->model.num_levels()
     << ",\"num_outputs\":" << entry->model.num_outputs() << ",\"rows\":" << rows
     << ",\"cache\":{\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
     << ",\"evictions\":" << cache.evictions << ",\"entries\":" << cache.entries
     << ",\"capacity\":" << cache.capacity << ",\"shards\":" << cache.shards
     << "},\"batcher\":{\"max_batch\":" << options_.max_batch
     << ",\"linger_us\":" << options_.batch_linger_us
     << ",\"queue_capacity\":" << options_.queue_capacity
     << ",\"request_deadline_ms\":" << options_.request_deadline_ms << "}}\n";
  return net::HttpResponse::json(200, os.str());
}

net::HttpResponse ExplainService::handle_reloadz(const net::HttpRequest& request) {
  std::string path;
  if (!request.body.empty()) {
    const JsonParseResult parsed = json_parse(request.body);
    if (!parsed.ok) {
      return error_response(400, "bad_request", "malformed JSON: " + parsed.error);
    }
    if (!parsed.value.is_object()) {
      return error_response(400, "bad_request", "request body must be a JSON object");
    }
    if (const JsonValue* p = parsed.value.find("path")) {
      if (!p->is_string()) {
        return error_response(400, "bad_request", "\"path\" must be a string");
      }
      path = p->string;
    }
  }
  if (path.empty()) {
    std::lock_guard<std::mutex> lock(model_mutex_);
    path = default_model_path_;
  }
  if (path.empty()) {
    return error_response(400, "bad_request",
                          "no \"path\" given and no default model path configured");
  }
  core::LoadModelResult loaded = core::load_model_file_ex(path);
  if (!loaded) {
    obs::MetricsRegistry::instance().counter("agua.serve.reload_failures").add(1);
    const int status = loaded.error.code == core::LoadErrorCode::kIoError ? 404 : 500;
    return error_response(status, core::load_error_name(loaded.error.code),
                          loaded.error.detail);
  }
  const ModelInfo info = install_model(std::move(*loaded.model), path);
  obs::MetricsRegistry::instance().counter("agua.serve.reloads").add(1);
  std::ostringstream os;
  os << "{\"generation\":" << info.generation << ",\"fingerprint\":\""
     << json_escape(info.fingerprint) << "\",\"source\":\"" << json_escape(info.source)
     << "\"}\n";
  return net::HttpResponse::json(200, os.str());
}

void ExplainService::dispatcher_loop() {
  while (true) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // stop() flushes what's left
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      obs::MetricsRegistry::instance().gauge("agua.overload.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    {
      // Feed CoDel the sojourn (admission → dequeue) of everything dequeued;
      // a standing backlog here is what turns admission shedding on.
      const auto now = std::chrono::steady_clock::now();
      overload_.on_dequeue(steady_us(now) - steady_us(batch.front()->enqueued),
                           steady_us(now));
    }
    if (collect_hook_) collect_hook_();
    bool deadline_close = false;
    if (batch.size() < options_.max_batch) {
      // Linger: trade a bounded sliver of latency for coalescing whatever
      // arrives in the window into one pool fan-out.
      std::unique_lock<std::mutex> lock(queue_mutex_);
      auto linger_end = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.batch_linger_us);
      // Batch-aware deadline scheduling: never linger into the oldest
      // member's deadline — close early, leaving margin for the fan-out, so
      // a would-be 408 becomes a served response.
      const std::int64_t margin_us = options_.overload.deadline_margin_us;
      if (margin_us > 0) {
        const auto latest = batch.front()->deadline - std::chrono::microseconds(margin_us);
        if (latest < linger_end) {
          linger_end = latest;
          deadline_close = true;
        }
      }
      while (batch.size() < options_.max_batch && !stop_) {
        if (!queue_.empty()) {
          const auto now = std::chrono::steady_clock::now();
          overload_.on_dequeue(steady_us(now) - steady_us(queue_.front()->enqueued),
                               steady_us(now));
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          obs::MetricsRegistry::instance().gauge("agua.overload.queue_depth")
              .set(static_cast<double>(queue_.size()));
          continue;
        }
        if (options_.batch_linger_us <= 0) break;
        if (queue_cv_.wait_until(lock, linger_end) == std::cv_status::timeout) {
          // Drain arrivals that raced the timeout, then close the batch.
          while (!queue_.empty() && batch.size() < options_.max_batch) {
            const auto now = std::chrono::steady_clock::now();
            overload_.on_dequeue(steady_us(now) - steady_us(queue_.front()->enqueued),
                                 steady_us(now));
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
          obs::MetricsRegistry::instance().gauge("agua.overload.queue_depth")
              .set(static_cast<double>(queue_.size()));
          break;
        }
      }
    }
    if (deadline_close) {
      obs::MetricsRegistry::instance().counter("agua.overload.deadline_close").add(1);
    }
    run_batch(batch);
  }
}

void ExplainService::run_batch(std::vector<std::shared_ptr<Pending>>& batch) {
  std::shared_ptr<ModelEntry> entry;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    entry = model_;
  }
  if (!entry) {
    for (const std::shared_ptr<Pending>& pending : batch) {
      fulfill(*pending, error_response(503, "no_model", "no model installed"));
    }
    return;
  }
  if (batch_hook_) batch_hook_(batch.size());

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::instance();
  std::vector<net::HttpResponse> responses(batch.size());
  {
    obs::TraceSpan span("agua.serve.batch");
    metrics.counter("agua.serve.batches").add(1);
    metrics.histogram("agua.serve.batch.size").record(static_cast<double>(batch.size()));

    std::vector<std::vector<double>> embeddings;
    std::vector<std::size_t> classes;
    embeddings.reserve(batch.size());
    classes.reserve(batch.size());
    for (const std::shared_ptr<Pending>& pending : batch) {
      embeddings.push_back(pending->embedding);
      classes.push_back(pending->output_class);
      // The shared batch execution span belongs to every member's trace — a
      // /tracez?trace=ID view shows both the request's own span (connection
      // thread) and the batch it rode in (dispatcher thread).
      span.annotate_trace(pending->trace);
    }
    // Only this thread ever runs forward passes on the entry's model; a
    // concurrent /reloadz swaps the shared_ptr but never touches this one.
    // A throwing fan-out (resource exhaustion, poisoned model) fails the
    // whole batch — each member counts against the circuit breaker.
    core::EachExplainResult each;
    bool fanout_threw = false;
    try {
      each = core::explain_each_isolated(entry->model, embeddings, classes);
    } catch (const std::exception& e) {
      fanout_threw = true;
      metrics.counter("agua.serve.errors").add(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        responses[i] = error_response(500, "explain_failed",
                                      std::string("explanation backend threw: ") +
                                          e.what());
      }
    } catch (...) {
      fanout_threw = true;
      metrics.counter("agua.serve.errors").add(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        responses[i] = error_response(500, "explain_failed", "explanation backend threw");
      }
    }

    if (!fanout_threw) {
      // Per-slot error messages, recovered in index order.
      std::vector<const std::string*> slot_error(batch.size(), nullptr);
      for (const core::SlotError& e : each.errors) {
        if (e.index < slot_error.size()) slot_error[e.index] = &e.message;
      }

      for (std::size_t i = 0; i < batch.size(); ++i) {
        const Pending& pending = *batch[i];
        if (!each.ok[i]) {
          metrics.counter("agua.serve.errors").add(1);
          const std::string message = slot_error[i] ? *slot_error[i] : "explanation failed";
          // Poisoned input is the client's fault; anything else is ours.
          const bool client_fault = message == "non-finite embedding";
          responses[i] = error_response(client_fault ? 400 : 500,
                                        client_fault ? "bad_request" : "explain_failed",
                                        message);
          continue;
        }
        std::string body = render_explanation(each.slots[i], entry->info, pending.top_k);
        // Cache even when the requester already gave up (408): the work is done,
        // the next identical request should hit.
        if (cache_.put(pending.cache_key, body)) {
          metrics.counter("agua.serve.cache.evictions").add(1);
        }
        responses[i] = net::HttpResponse::json(200, std::move(body));
        responses[i].extra_headers.emplace_back("X-Agua-Cache", "miss");
      }
    }
  }
  // Circuit-breaker bookkeeping: a 5xx or an abandoned (timed-out) member is
  // evidence the fan-out is sick; anything else is evidence it is healthy.
  {
    const std::int64_t now_ns = obs::now_ns();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool failure = responses[i].status >= 500 ||
                           batch[i]->abandoned.load(std::memory_order_relaxed);
      overload_.record_outcome(failure, now_ns);
    }
  }
  // The batch span closes — and lands in every member's trace index — before
  // any response is released. A client that has its response in hand can
  // always find the batch it rode in at /tracez?trace=ID.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    fulfill(*batch[i], std::move(responses[i]));
  }
}

}  // namespace agua::serve
