// Statistical primitives shared across the Agua library and its benches:
// summary statistics, empirical CDFs, the Kolmogorov-Smirnov two-sample test
// used by the dataset-expansion experiment (Fig. 11), top-k recall used by
// the robustness experiments (Fig. 12), and softmax/argmax helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace agua::common {

/// Arithmetic mean; 0 for an empty vector.
double mean(const std::vector<double>& v);

/// Population variance; 0 for fewer than two samples.
double variance(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// Minimum / maximum; 0 for an empty vector.
double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);

/// Linear-interpolation percentile, p in [0, 100].
double percentile(std::vector<double> v, double p);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Least-squares slope of v against its index (simple trend estimate).
double slope(const std::vector<double>& v);

/// Empirical CDF evaluated at x: fraction of samples <= x.
double ecdf(const std::vector<double>& samples, double x);

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
double ks_statistic(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the k largest entries, in descending order of value.
std::vector<std::size_t> top_k_indices(const std::vector<double>& v, std::size_t k);

/// |A ∩ B| / |A| where A = reference top-k set, B = candidate top-k set.
/// This is the recall metric of §5.3 / Fig. 12.
double top_k_recall(const std::vector<std::size_t>& reference,
                    const std::vector<std::size_t>& candidate);

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<double>& logits);

/// Index of the maximum element (first on ties); 0 for an empty vector.
std::size_t argmax(const std::vector<double>& v);

/// Histogram of v over [lo, hi] with the given number of equal-width bins;
/// out-of-range samples are clamped into the edge bins.
std::vector<std::size_t> histogram(const std::vector<double>& v, double lo, double hi,
                                   std::size_t bins);

/// Normalized counts (sums to 1 unless all counts are zero).
std::vector<double> normalize_counts(const std::vector<double>& counts);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace agua::common
