// Minimal CSV reading/writing used by benches to dump figure series so they
// can be re-plotted outside the harness.
#pragma once

#include <string>
#include <vector>

namespace agua::common {

/// An in-memory CSV document: a header row plus numeric rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  /// Index of a header column, or npos if missing.
  std::size_t column(const std::string& name) const;

  /// All values of one column.
  std::vector<double> column_values(const std::string& name) const;
};

/// Serialize to CSV text.
std::string to_csv(const CsvDocument& doc);

/// Parse a CSV string with one header line and numeric cells.
/// Non-numeric cells parse to 0; ragged rows are padded/truncated to header width.
CsvDocument parse_csv(const std::string& text);

/// Write the document to a file; returns false on I/O failure.
bool write_csv_file(const std::string& path, const CsvDocument& doc);

/// Read a document from a file; returns an empty document on failure.
CsvDocument read_csv_file(const std::string& path);

}  // namespace agua::common
