// Concept-based distribution-shift detection (§5.2.1, Fig. 5) and the
// concept-driven retraining selector (§5.2.2): aggregate batched explanations
// per trace, tag each trace with its top-k concepts, and compare normalized
// concept proportions between two deployments.
#pragma once

#include <string>
#include <vector>

#include "core/explain.hpp"
#include "core/surrogate.hpp"

namespace agua::core {

/// The controller embeddings of the states visited along one trace.
using TraceEmbeddings = std::vector<std::vector<double>>;

/// Mean expected concept intensity of a trace's states under δθ: per concept,
/// E[level]/(k-1) averaged over the trace.
std::vector<double> trace_concept_intensity(AguaModel& model,
                                            const TraceEmbeddings& trace);

/// Top-k dominant concepts of one trace by absolute intensity.
std::vector<std::size_t> trace_top_concepts(AguaModel& model,
                                            const TraceEmbeddings& trace,
                                            std::size_t top_k);

struct DriftReport {
  std::vector<std::string> concept_names;
  std::vector<double> proportions_a;  ///< normalized tag counts, dataset A
  std::vector<double> proportions_b;  ///< normalized tag counts, dataset B
  std::vector<double> delta;          ///< B - A per concept
  /// Concept indices whose share grew in B, sorted by decreasing delta —
  /// the "marked in red" set that drives concept-based retraining (§5.2.2).
  std::vector<std::size_t> increased;
  std::vector<std::size_t> decreased;
  /// Per-concept intensity statistics over all traces of both datasets;
  /// traces are tagged by their most *distinctive* concepts (z-scored
  /// intensity), so globally-common concepts do not swamp the tags.
  std::vector<double> intensity_mean;
  std::vector<double> intensity_std;

  std::string format() const;
};

/// Tag one trace with its top-k distinctive concepts under a report's
/// intensity normalization.
std::vector<std::size_t> tag_trace(AguaModel& model, const TraceEmbeddings& trace,
                                   const DriftReport& report, std::size_t top_k);

/// Compare two deployments at the concept level.
DriftReport detect_concept_drift(AguaModel& model,
                                 const std::vector<TraceEmbeddings>& dataset_a,
                                 const std::vector<TraceEmbeddings>& dataset_b,
                                 std::size_t top_k = 3);

/// §5.2.2's trace selector: indices of dataset_b traces whose top concepts
/// intersect the report's `increased` set — the under-represented subset to
/// retrain on.
std::vector<std::size_t> select_retraining_traces(
    AguaModel& model, const std::vector<TraceEmbeddings>& dataset_b,
    const DriftReport& report, std::size_t top_k = 3);

}  // namespace agua::core
