# Empty dependencies file for test_ddos.
# This may be replaced when dependencies are built.
