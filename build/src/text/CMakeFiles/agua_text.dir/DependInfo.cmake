
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/describer.cpp" "src/text/CMakeFiles/agua_text.dir/describer.cpp.o" "gcc" "src/text/CMakeFiles/agua_text.dir/describer.cpp.o.d"
  "/root/repo/src/text/embedder.cpp" "src/text/CMakeFiles/agua_text.dir/embedder.cpp.o" "gcc" "src/text/CMakeFiles/agua_text.dir/embedder.cpp.o.d"
  "/root/repo/src/text/similarity.cpp" "src/text/CMakeFiles/agua_text.dir/similarity.cpp.o" "gcc" "src/text/CMakeFiles/agua_text.dir/similarity.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/agua_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/agua_text.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/agua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
