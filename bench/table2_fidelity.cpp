// Table 2: fidelity of Trustee (full / pruned) vs Agua (open-source and
// closed-source embedding stacks) on ABR, congestion control, and DDoS
// detection. Fidelity is eq. 11 on a held-out test set.
//
//   table2_fidelity [--json PATH]
//
// --json writes the measured fidelities as an `agua.bench.v1` document
// (unit "fidelity") next to the human-readable table.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/abr_bundle.hpp"
#include "apps/cc_bundle.hpp"
#include "apps/ddos_bundle.hpp"
#include "bench/bench_json.hpp"
#include "bench/bench_util.hpp"
#include "common/thread_pool.hpp"
#include "trustee/trustee.hpp"

namespace {

using namespace agua;

struct AppResult {
  double trustee_full = 0.0;
  double trustee_pruned = 0.0;
  double agua_open = 0.0;
  double agua_closed = 0.0;
};

AppResult evaluate(core::Dataset& train, core::Dataset& test,
                   const std::function<std::size_t(const std::vector<double>&)>& controller,
                   const concepts::ConceptSet& concept_set,
                   const core::DescribeFn& describe, std::uint64_t seed) {
  AppResult result;
  common::Rng rng(seed);

  // Trustee baseline on raw inputs.
  std::vector<std::vector<double>> train_inputs;
  std::vector<std::vector<double>> test_inputs;
  for (const core::Sample& s : train.samples) train_inputs.push_back(s.input);
  for (const core::Sample& s : test.samples) test_inputs.push_back(s.input);
  trustee::TrusteeExplainer explainer;
  const trustee::TrustReport report =
      explainer.train(train_inputs, controller, train.num_outputs, test_inputs, rng);
  result.trustee_full = report.full_fidelity;
  result.trustee_pruned = report.pruned_fidelity;

  // Agua, two embedding stacks.
  for (const bool open_variant : {true, false}) {
    core::AguaConfig config;
    config.embedder = open_variant ? text::open_source_embedder_config()
                                   : text::closed_source_embedder_config();
    common::Rng agua_rng(seed ^ (open_variant ? 0x0BEE : 0xCAFE));
    core::AguaArtifacts artifacts =
        core::train_agua(train, concept_set, describe, config, agua_rng);
    const double f = core::fidelity(*artifacts.model, test);
    (open_variant ? result.agua_open : result.agua_closed) = f;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agua;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::print_header("Table 2", "Explanation fidelity: Trustee vs Agua");

  std::printf("\n[ABR] training Gelato-like controller and collecting 4,000 pairs...\n");
  apps::AbrBundle abr = apps::make_abr_bundle(11);
  const AppResult abr_result =
      evaluate(abr.train, abr.test, abr.controller_fn(), abr.describer.concept_set(),
               abr.describe_fn(), 101);

  std::printf("[CC] training Aurora-like controller (2,000 train / 4,000 test pairs)...\n");
  apps::CcBundle cc = apps::make_cc_bundle(12);
  const AppResult cc_result =
      evaluate(cc.train, cc.test, cc.controller_fn(), cc.describer->concept_set(),
               cc.describe_fn(), 102);

  std::printf("[DDoS] training LUCID-like classifier (1,000 train / 450 test flows)...\n");
  apps::DdosBundle ddos = apps::make_ddos_bundle(13);
  const AppResult ddos_result =
      evaluate(ddos.train, ddos.test, ddos.controller_fn(), ddos.describer.concept_set(),
               ddos.describe_fn(), 103);

  struct Row {
    const char* app;
    AppResult paper;
    AppResult measured;
  };
  const Row rows[] = {
      {"ABR", {0.946, 0.949, 0.982, 0.983}, abr_result},
      {"CC", {0.215, 0.235, 0.932, 0.936}, cc_result},
      {"DDoS", {0.991, 0.977, 0.996, 1.000}, ddos_result},
  };

  common::TablePrinter table({"application", "variant", "paper", "measured"});
  for (const Row& row : rows) {
    table.add_row({row.app, "Trustee full", common::format_double(row.paper.trustee_full),
                   common::format_double(row.measured.trustee_full)});
    table.add_row({row.app, "Trustee pruned",
                   common::format_double(row.paper.trustee_pruned),
                   common::format_double(row.measured.trustee_pruned)});
    table.add_row({row.app, "Agua (open embeddings)",
                   common::format_double(row.paper.agua_open),
                   common::format_double(row.measured.agua_open)});
    table.add_row({row.app, "Agua (closed embeddings)",
                   common::format_double(row.paper.agua_closed),
                   common::format_double(row.measured.agua_closed)});
  }
  std::printf("\n%s", table.render().c_str());

  std::printf(
      "\nShape checks: Agua >= 0.9 everywhere; Agua > Trustee on CC by a wide\n"
      "margin; Trustee competitive on ABR/DDoS.\n");

  if (!json_path.empty()) {
    bench::BenchJson doc("table2_fidelity", common::default_thread_count());
    for (const Row& row : rows) {
      const std::string app = row.app;
      doc.add(app + ".trustee_full", row.measured.trustee_full, "fidelity");
      doc.add(app + ".trustee_pruned", row.measured.trustee_pruned, "fidelity");
      doc.add(app + ".agua_open", row.measured.agua_open, "fidelity");
      doc.add(app + ".agua_closed", row.measured.agua_closed, "fidelity");
    }
    if (doc.write(json_path)) {
      std::printf("bench telemetry written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
