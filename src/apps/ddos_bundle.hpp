// DDoS experiment bundle: the trained LUCID-like classifier, flow datasets
// following the paper's split (1,000 training / 450 testing samples), and
// the describe adapter.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/pipeline.hpp"
#include "ddos/controller.hpp"
#include "ddos/describe.hpp"

namespace agua::apps {

struct DdosBundle {
  std::unique_ptr<ddos::DdosController> controller;
  ddos::DdosDescriber describer;
  core::Dataset train;
  core::Dataset test;
  double test_accuracy = 0.0;  ///< controller accuracy vs ground truth

  std::function<std::size_t(const std::vector<double>&)> controller_fn();
  core::DescribeFn describe_fn() const;
};

DdosBundle make_ddos_bundle(std::uint64_t seed, std::size_t train_flows = 1000,
                            std::size_t test_flows = 450);

/// Build a Dataset from flows using the trained controller.
core::Dataset collect_ddos_dataset(ddos::DdosController& controller,
                                   const std::vector<ddos::Flow>& flows);

}  // namespace agua::apps
