#include "common/string_util.hpp"

#include <cctype>
#include <sstream>

namespace agua::common {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace agua::common
