file(REMOVE_RECURSE
  "libagua_ddos.a"
)
