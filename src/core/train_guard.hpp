// Non-finite training guard (DESIGN.md §8), shared by ConceptMapping::train
// and OutputMapping::train.
//
// A poisoned input, an injected fault, or a genuinely diverging run shows up
// as a NaN/Inf batch loss or gradient. Instead of silently corrupting the
// weights (one NaN gradient NaNs every parameter forever), the guard skips
// the optimizer step, halves the learning rate, and retries; after a bounded
// number of consecutive bad batches it throws TrainDivergedError. The first
// finite batch after a bad streak restores the base learning rate. When no
// batch is ever non-finite the guard changes no floating-point operation, so
// the §7 bitwise-determinism contract is untouched.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace agua::core {

/// Thrown when `max_consecutive` batches in a row are non-finite — the run
/// cannot make progress and the caller should surface the failure.
class TrainDivergedError : public std::runtime_error {
 public:
  TrainDivergedError(const std::string& stage, std::size_t epoch, std::size_t streak);
};

class NonFiniteGuard {
 public:
  /// `stage` tags telemetry ("concept" / "output"); `base_lr` is what a
  /// recovery restores; `lr` is mutated in place on backoff/recovery.
  NonFiniteGuard(const char* stage, double base_lr, std::size_t max_consecutive = 8)
      : stage_(stage), base_lr_(base_lr), max_consecutive_(max_consecutive) {}

  /// Decide whether the just-reduced batch may be applied. True → step;
  /// false → skip (the caller must not call optimizer.step() or count the
  /// batch). Takes the per-chunk losses rather than their sum so an admitted
  /// batch's loss accumulation keeps the exact chunk-order arithmetic of the
  /// §7 contract. Emits `agua.train.nonfinite` counter bumps and
  /// `train.nonfinite` / `train.recover` events; throws TrainDivergedError
  /// after max_consecutive consecutive skips.
  bool admit(const std::vector<double>& chunk_losses,
             const std::vector<nn::Parameter*>& params, double& lr, std::size_t epoch);

  std::uint64_t total() const { return total_; }
  /// Restore the running count from a checkpoint (resume).
  void set_total(std::uint64_t total) { total_ = total; }

 private:
  const char* stage_;
  double base_lr_;
  std::size_t max_consecutive_;
  std::size_t consecutive_ = 0;
  std::uint64_t total_ = 0;
};

/// True when every accumulated gradient element is finite.
bool grads_finite(const std::vector<nn::Parameter*>& params);

}  // namespace agua::core
