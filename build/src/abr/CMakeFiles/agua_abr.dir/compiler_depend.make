# Empty compiler generated dependencies file for agua_abr.
# This may be replaced when dependencies are built.
