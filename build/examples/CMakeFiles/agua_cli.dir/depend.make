# Empty dependencies file for agua_cli.
# This may be replaced when dependencies are built.
