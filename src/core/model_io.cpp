#include "core/model_io.hpp"

#include <fstream>

namespace agua::core {
namespace {

constexpr std::uint32_t kModelVersion = 1;

void save_concept_set(common::BinaryWriter& w, const concepts::ConceptSet& set) {
  w.write_string(set.application());
  w.write_u64(set.size());
  for (const concepts::Concept& c : set.concepts()) {
    w.write_string(c.name);
    w.write_string(c.description);
  }
}

std::optional<concepts::ConceptSet> load_concept_set(common::BinaryReader& r) {
  const std::string application = r.read_string();
  const std::uint64_t count = r.read_u64();
  if (!r.ok() || count > 4096) return std::nullopt;
  std::vector<concepts::Concept> list;
  list.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    concepts::Concept c;
    c.name = r.read_string();
    c.description = r.read_string();
    list.push_back(std::move(c));
  }
  if (!r.ok()) return std::nullopt;
  return concepts::ConceptSet(application, std::move(list));
}

}  // namespace

void save_model(common::BinaryWriter& w, AguaModel& model) {
  common::write_archive_header(w, kModelVersion);
  save_concept_set(w, model.concept_set());
  model.concept_mapping().save(w);
  model.output_mapping().save(w);
}

std::optional<AguaModel> load_model(common::BinaryReader& r) {
  if (common::read_archive_header(r) != kModelVersion) return std::nullopt;
  auto concept_set = load_concept_set(r);
  if (!concept_set) return std::nullopt;
  ConceptMapping concept_mapping = ConceptMapping::load(r);
  OutputMapping output_mapping = OutputMapping::load(r);
  if (!r.ok()) return std::nullopt;
  // Structural consistency: C*k of δ must match Ω's input width.
  if (concept_mapping.output_dim() != output_mapping.config().concept_dim ||
      concept_mapping.config().num_concepts != concept_set->size()) {
    return std::nullopt;
  }
  return AguaModel(std::move(*concept_set), std::move(concept_mapping),
                   std::move(output_mapping));
}

bool save_model_file(const std::string& path, AguaModel& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  common::BinaryWriter w(out);
  save_model(w, model);
  return w.ok();
}

std::optional<AguaModel> load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  common::BinaryReader r(in);
  return load_model(r);
}

}  // namespace agua::core
