file(REMOVE_RECURSE
  "libagua_cc.a"
)
