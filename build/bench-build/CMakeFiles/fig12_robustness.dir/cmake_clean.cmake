file(REMOVE_RECURSE
  "../bench/fig12_robustness"
  "../bench/fig12_robustness.pdb"
  "CMakeFiles/fig12_robustness.dir/fig12_robustness.cpp.o"
  "CMakeFiles/fig12_robustness.dir/fig12_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
