#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

namespace {

using namespace agua;
using namespace agua::core;

AguaModel make_model(std::uint64_t seed = 1) {
  common::Rng rng(seed);
  ConceptMapping::Config cm;
  cm.embedding_dim = 6;
  cm.num_concepts = 8;
  cm.num_levels = 3;
  ConceptMapping mapping(cm, rng);
  OutputMapping::Config om;
  om.concept_dim = 24;
  om.num_outputs = 4;
  OutputMapping output(om, rng);
  return AguaModel(concepts::cc_concepts(), std::move(mapping), std::move(output));
}

TEST(ModelIo, RoundTripPreservesPredictions) {
  AguaModel model = make_model();
  std::stringstream stream;
  common::BinaryWriter w(stream);
  save_model(w, model);
  common::BinaryReader r(stream);
  auto loaded = load_model(r);
  ASSERT_TRUE(loaded.has_value());
  const std::vector<double> h = {0.1, -0.2, 0.3, 0.5, -0.4, 0.2};
  EXPECT_EQ(loaded->predict_class(h), model.predict_class(h));
  const auto original = model.output_probs(h);
  const auto restored = loaded->output_probs(h);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored[i], original[i]);
  }
}

TEST(ModelIo, RoundTripPreservesConceptSet) {
  AguaModel model = make_model(2);
  std::stringstream stream;
  common::BinaryWriter w(stream);
  save_model(w, model);
  common::BinaryReader r(stream);
  auto loaded = load_model(r);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->concept_set().application(), "cc");
  EXPECT_EQ(loaded->concept_set().names(), model.concept_set().names());
  EXPECT_EQ(loaded->num_levels(), model.num_levels());
}

TEST(ModelIo, RejectsGarbage) {
  std::stringstream stream;
  stream << "this is not an agua model archive at all";
  common::BinaryReader r(stream);
  EXPECT_FALSE(load_model(r).has_value());
}

TEST(ModelIo, RejectsTruncatedArchive) {
  AguaModel model = make_model(3);
  std::stringstream stream;
  common::BinaryWriter w(stream);
  save_model(w, model);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  common::BinaryReader r(truncated);
  EXPECT_FALSE(load_model(r).has_value());
}

TEST(ModelIo, FileRoundTrip) {
  AguaModel model = make_model(4);
  const std::string path = testing::TempDir() + "/agua_model_test.bin";
  ASSERT_TRUE(save_model_file(path, model));
  auto loaded = load_model_file(path);
  ASSERT_TRUE(loaded.has_value());
  const std::vector<double> h = {0.5, 0.5, -0.5, -0.5, 0.1, 0.9};
  EXPECT_EQ(loaded->predict_class(h), model.predict_class(h));
}

TEST(ModelIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_model_file("/nonexistent/agua/model.bin").has_value());
}

std::string serialize_model(AguaModel& model) {
  std::ostringstream os;
  common::BinaryWriter w(os);
  save_model(w, model);
  return os.str();
}

LoadModelResult load_from_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  common::BinaryReader r(is);
  return load_model_ex(r);
}

TEST(ModelIo, TypedErrorForMissingFile) {
  const LoadModelResult result = load_model_file_ex("/nonexistent/agua/model.bin");
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error.code, LoadErrorCode::kIoError);
}

TEST(ModelIo, TypedErrorForBadMagic) {
  AguaModel model = make_model(5);
  std::string bytes = serialize_model(model);
  bytes[0] ^= 0xFF;
  const LoadModelResult result = load_from_bytes(bytes);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error.code, LoadErrorCode::kBadMagic);
}

TEST(ModelIo, TypedErrorForBadVersion) {
  AguaModel model = make_model(5);
  std::string bytes = serialize_model(model);
  bytes[4] ^= 0x40;  // version field follows the 4-byte magic
  const LoadModelResult result = load_from_bytes(bytes);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error.code, LoadErrorCode::kBadVersion);
}

// Regression: a valid archive followed by extra bytes used to load silently,
// which hides concatenation/torn-write bugs in anything that stores archives.
TEST(ModelIo, RejectsTrailingGarbage) {
  AguaModel model = make_model(6);
  std::string bytes = serialize_model(model);
  bytes += "extra bytes after a perfectly valid archive";
  const LoadModelResult result = load_from_bytes(bytes);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error.code, LoadErrorCode::kTrailingGarbage);

  // The untyped wrapper rejects it too.
  std::istringstream is(bytes);
  common::BinaryReader r(is);
  EXPECT_FALSE(load_model(r).has_value());
}

TEST(ModelIo, TrailingSingleByteRejected) {
  AguaModel model = make_model(6);
  std::string bytes = serialize_model(model);
  bytes.push_back('\0');
  const LoadModelResult result = load_from_bytes(bytes);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.error.code, LoadErrorCode::kTrailingGarbage);
}

// Fuzz-style corruption sweep: load_model must never crash and must return a
// sensible typed error whatever prefix of the archive survives. Every
// truncation length is tried — this covers every section boundary by
// construction.
TEST(ModelIoFuzz, TruncationAtEveryByteIsTyped) {
  AguaModel model = make_model(7);
  const std::string bytes = serialize_model(model);
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const LoadModelResult result = load_from_bytes(bytes.substr(0, len));
    ASSERT_FALSE(result) << "truncated to " << len << " bytes still loaded";
    EXPECT_EQ(result.error.code, LoadErrorCode::kTruncated)
        << "len=" << len << " -> " << load_error_name(result.error.code);
  }
  // Sanity: the full archive still loads.
  EXPECT_TRUE(load_from_bytes(bytes));
}

TEST(ModelIoFuzz, BitFlipsNeverCrashAndAreTyped) {
  AguaModel model = make_model(8);
  const std::string bytes = serialize_model(model);
  const auto check_flip = [&](std::size_t byte, int bit) {
    std::string mutated = bytes;
    mutated[byte] ^= static_cast<char>(1 << bit);
    const LoadModelResult result = load_from_bytes(mutated);
    ASSERT_FALSE(result) << "flip at byte " << byte << " bit " << bit
                         << " loaded anyway";
    const LoadErrorCode code = result.error.code;
    if (byte < 4) {
      EXPECT_EQ(code, LoadErrorCode::kBadMagic) << "byte=" << byte;
    } else if (byte < 8) {
      EXPECT_EQ(code, LoadErrorCode::kBadVersion) << "byte=" << byte;
    } else {
      // Anywhere else a flip must surface as corruption, not load quietly:
      // payload flips hit the CRC, frame-header flips hit the id/size
      // validation, size inflation can also read off the end.
      EXPECT_TRUE(code == LoadErrorCode::kBadChecksum ||
                  code == LoadErrorCode::kStructural ||
                  code == LoadErrorCode::kTruncated ||
                  code == LoadErrorCode::kTrailingGarbage)
          << "byte=" << byte << " bit=" << bit << " -> "
          << load_error_name(code);
    }
  };
  // Dense sweep over the header + first frame, strided sweep over the rest.
  const std::size_t dense = std::min<std::size_t>(bytes.size(), 256);
  for (std::size_t byte = 0; byte < dense; ++byte) {
    for (int bit = 0; bit < 8; ++bit) check_flip(byte, bit);
  }
  for (std::size_t byte = dense; byte < bytes.size(); byte += 17) {
    check_flip(byte, static_cast<int>(byte % 8));
  }
}

}  // namespace
