#include "common/serialize.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <limits>

namespace agua::common {
namespace {

constexpr std::uint32_t kMagic = kArchiveMagic;
// Guard against hostile/corrupt length prefixes blowing up allocations.
constexpr std::uint64_t kMaxContainer = 1ULL << 32;

}  // namespace

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_u64(std::uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_double(double v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_doubles(const std::vector<double>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

double BinaryReader::read_double() {
  double v = 0.0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (!in_ || size > kMaxContainer) {
    in_.setstate(std::ios::failbit);
    return {};
  }
  std::string s(size, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(size));
  return s;
}

std::vector<double> BinaryReader::read_doubles() {
  const std::uint64_t size = read_u64();
  if (!in_ || size > kMaxContainer / sizeof(double)) {
    in_.setstate(std::ios::failbit);
    return {};
  }
  std::vector<double> v(size);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(size * sizeof(double)));
  return v;
}

void write_archive_header(BinaryWriter& w, std::uint32_t version) {
  w.write_u32(kMagic);
  w.write_u32(version);
}

std::uint32_t read_archive_header(BinaryReader& r) {
  const std::uint32_t magic = r.read_u32();
  const std::uint32_t version = r.read_u32();
  if (!r.ok() || magic != kMagic) return 0;
  return version;
}

void BinaryWriter::write_bytes(const char* data, std::size_t size) {
  out_.write(data, static_cast<std::streamsize>(size));
}

std::string BinaryReader::read_bytes(std::size_t size) {
  std::string s(size, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in_.gcount()) != size) in_.setstate(std::ios::failbit);
  return s;
}

bool BinaryReader::at_eof() {
  if (!in_) return in_.eof();
  return in_.peek() == std::char_traits<char>::eof();
}

namespace {

/// Table-driven reflected CRC-32 (polynomial 0xEDB88320), built once.
const std::uint32_t* crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  const std::uint32_t* table = crc32_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void write_section(BinaryWriter& w, std::uint32_t section_id, const std::string& payload) {
  w.write_u32(section_id);
  w.write_u64(payload.size());
  w.write_bytes(payload.data(), payload.size());
  w.write_u32(crc32(payload.data(), payload.size()));
}

SectionStatus read_section(BinaryReader& r, std::uint32_t expected_id,
                           std::string& payload) {
  const std::uint32_t id = r.read_u32();
  const std::uint64_t size = r.read_u64();
  if (!r.ok()) return SectionStatus::kTruncated;
  if (id != expected_id) return SectionStatus::kBadId;
  if (size > kMaxSectionBytes) return SectionStatus::kTooLarge;
  payload = r.read_bytes(static_cast<std::size_t>(size));
  const std::uint32_t stored_crc = r.read_u32();
  if (!r.ok()) return SectionStatus::kTruncated;
  if (stored_crc != crc32(payload.data(), payload.size())) return SectionStatus::kBadCrc;
  return SectionStatus::kOk;
}

}  // namespace agua::common
