#include "apps/abr_bundle.hpp"

#include <algorithm>

namespace agua::apps {
namespace {

core::Sample to_sample(abr::AbrController& controller, std::vector<double> observation) {
  core::Sample sample;
  sample.embedding = controller.embedding(observation);
  sample.output_probs = controller.output_probs(observation);
  sample.output_class = common::argmax(sample.output_probs);
  sample.input = std::move(observation);
  return sample;
}

}  // namespace

std::vector<std::vector<double>> AbrBundle::raw_inputs(const core::Dataset& dataset) {
  std::vector<std::vector<double>> out;
  out.reserve(dataset.size());
  for (const core::Sample& s : dataset.samples) out.push_back(s.input);
  return out;
}

std::function<std::size_t(const std::vector<double>&)> AbrBundle::controller_fn() {
  abr::AbrController* ctrl = controller.get();
  return [ctrl](const std::vector<double>& input) { return ctrl->act(input); };
}

core::DescribeFn AbrBundle::describe_fn() const {
  const abr::AbrDescriber* desc = &describer;
  return [desc](const std::vector<double>& input, const text::DescriberOptions& options) {
    return desc->describe(input, options);
  };
}

core::Dataset collect_abr_dataset(abr::AbrController& controller,
                                  const std::vector<abr::NetworkTrace>& traces,
                                  std::size_t chunks_per_video, std::size_t max_pairs,
                                  common::Rng& rng) {
  core::Dataset dataset;
  dataset.num_outputs = abr::AbrController::kActions;
  auto samples = abr::collect_rollouts(controller, traces, chunks_per_video, rng);
  dataset.samples.reserve(std::min(max_pairs, samples.size()));
  for (auto& rollout_sample : samples) {
    if (dataset.samples.size() >= max_pairs) break;
    dataset.samples.push_back(to_sample(controller, std::move(rollout_sample.observation)));
  }
  return dataset;
}

std::vector<core::TraceEmbeddings> collect_abr_trace_embeddings(
    abr::AbrController& controller, const std::vector<abr::NetworkTrace>& traces,
    std::size_t chunks_per_video, common::Rng& rng) {
  std::vector<core::TraceEmbeddings> out;
  out.reserve(traces.size());
  for (const abr::NetworkTrace& trace : traces) {
    abr::AbrEnv env(abr::VideoManifest::generate(chunks_per_video, rng), trace);
    const abr::Rollout rollout =
        abr::rollout_episode(controller, std::move(env), /*greedy=*/true, nullptr);
    core::TraceEmbeddings embeddings;
    embeddings.reserve(rollout.samples.size());
    for (const auto& sample : rollout.samples) {
      embeddings.push_back(controller.embedding(sample.observation));
    }
    out.push_back(std::move(embeddings));
  }
  return out;
}

AbrBundle make_abr_bundle(std::uint64_t seed, std::size_t train_pairs,
                          std::size_t test_pairs) {
  AbrBundle bundle;
  bundle.controller = std::make_unique<abr::AbrController>(seed);
  common::Rng rng(seed ^ 0xAB12);

  // The 2021-era training mix: mostly stable broadband/4G-class links.
  std::vector<abr::NetworkTrace> training_traces =
      abr::generate_traces(abr::TraceFamily::kPuffer2021, 18, 180, rng);
  {
    auto extra = abr::generate_traces(abr::TraceFamily::k4G, 6, 180, rng);
    for (auto& t : extra) training_traces.push_back(std::move(t));
  }

  abr::MpcTeacher teacher;
  abr::train_behavior_cloning(*bundle.controller, teacher, training_traces,
                              /*chunks_per_video=*/60, /*epochs=*/30,
                              /*learning_rate=*/0.02, rng);
  abr::ReinforceOptions pg;
  pg.updates = 20;
  pg.episodes_per_update = 4;
  pg.chunks_per_video = 45;
  pg.learning_rate = 3e-4;
  abr::train_reinforce(*bundle.controller, training_traces, pg, rng);

  // Rollout datasets: disjoint trace draws for train and test.
  const auto train_traces = abr::generate_traces(abr::TraceFamily::kPuffer2021, 14, 160, rng);
  const auto test_traces = abr::generate_traces(abr::TraceFamily::kPuffer2021, 14, 160, rng);
  bundle.train =
      collect_abr_dataset(*bundle.controller, train_traces, 60, train_pairs, rng);
  bundle.test = collect_abr_dataset(*bundle.controller, test_traces, 60, test_pairs, rng);
  return bundle;
}

}  // namespace agua::apps
