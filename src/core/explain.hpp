// Explanation generation (§3.5/§3.6): Hadamard decomposition of Ω's dot
// product (eq. 8), softmax-normalized concept weights scaled by the
// controller-output probability (eq. 9/10), with factual, counterfactual,
// single-input and batched variants. No LLM is involved at explanation time.
#pragma once

#include <string>
#include <vector>

#include "core/surrogate.hpp"

namespace agua::core {

/// A concept-based explanation for one output class.
struct Explanation {
  std::size_t output_class = 0;      ///< class the explanation is for
  std::size_t predicted_class = 0;   ///< surrogate argmax for this input
  double output_probability = 0.0;   ///< surrogate probability of output_class
  /// Per-concept normalized weights (eq. 9/10 aggregated over the k levels);
  /// they sum to output_probability.
  std::vector<double> concept_weights;
  /// Raw signed contributions per (concept, level) before normalization
  /// (the "stop before the L1 norm" view of eq. 8).
  std::vector<double> raw_contributions;
  /// Raw signed contributions aggregated per concept.
  std::vector<double> signed_concept_contributions;
  /// Per concept: the similarity level whose contribution dominates, mapped
  /// to thirds of the level range (0 = low/absent, 1 = medium, 2 = high).
  /// Lets explanations read "absence of X" vs "X present" (Fig. 4b/6a).
  std::vector<std::size_t> dominant_levels;
  std::vector<std::string> concept_names;

  /// Indices of the top-k concepts by normalized weight.
  std::vector<std::size_t> top_concepts(std::size_t k) const;

  /// Render as sorted ASCII bars (Fig. 4/6 style).
  std::string format(std::size_t top_k = 6) const;
};

/// Factual explanation: why the surrogate's chosen class was chosen (§3.6).
Explanation explain_factual(AguaModel& model, const std::vector<double>& embedding);

/// Explanation for an arbitrary class y'_i — the counterfactual query (§3.6).
Explanation explain_for_class(AguaModel& model, const std::vector<double>& embedding,
                              std::size_t output_class);

/// Batched explanation: average concept contributions over a batch (§3.6).
/// When `output_class` is npos, each input contributes its own factual class.
///
/// Fans out over `common::default_pool()` with one `model.clone()` per extra
/// worker (forward passes cache activations, so the shared model itself is
/// never queried concurrently); per-input results aggregate in index order,
/// so the explanation is bitwise identical for any pool size (DESIGN.md §7).
Explanation explain_batched(AguaModel& model,
                            const std::vector<std::vector<double>>& embeddings,
                            std::size_t output_class = static_cast<std::size_t>(-1));

/// One failed slot of a batched explanation.
struct SlotError {
  std::size_t index = 0;  ///< position in the input batch
  std::string message;
};

/// Batched explanation with per-slot fault isolation (DESIGN.md §8): a
/// poisoned embedding (NaN/Inf) or a throwing explanation affects only its
/// own slot. `aggregate` averages the successful slots; `errors` lists the
/// failures in index order.
struct BatchExplainResult {
  Explanation aggregate;
  std::vector<SlotError> errors;
  std::size_t attempted = 0;
  std::size_t succeeded = 0;

  /// True when at least one slot produced an explanation.
  explicit operator bool() const { return succeeded > 0; }
};

/// Fault-isolated variant of explain_batched. Exceptions are caught inside
/// the worker (they never cross the pool boundary), each failure bumps the
/// `agua.explain.slot_errors` counter, and with no failing slot the
/// aggregate is bitwise identical to explain_batched's. Fault site:
/// `explain.single` (throw mode exercises the isolation path).
BatchExplainResult explain_batched_isolated(
    AguaModel& model, const std::vector<std::vector<double>>& embeddings,
    std::size_t output_class = static_cast<std::size_t>(-1));

/// Per-slot result of a fault-isolated fan-out that keeps every slot's
/// explanation instead of aggregating — the shape the serving plane needs:
/// one coalesced micro-batch in, one independent explanation per request out.
struct EachExplainResult {
  std::vector<Explanation> slots;  ///< valid where ok[i] != 0
  std::vector<char> ok;            ///< 1 = slots[i] holds an explanation
  std::vector<SlotError> errors;   ///< failures in index order
  std::size_t attempted = 0;
  std::size_t succeeded = 0;
};

/// One pool fan-out over a heterogeneous batch: slot i is explained for
/// `output_classes[i]` (npos = factual, i.e. the surrogate's own argmax).
/// Same isolation, instrumentation (`agua.explain.batch` span,
/// `agua.explain.slot_errors`), clone-per-worker and index-order guarantees
/// as explain_batched_isolated — which is now a thin aggregation over this.
EachExplainResult explain_each_isolated(AguaModel& model,
                                        const std::vector<std::vector<double>>& embeddings,
                                        const std::vector<std::size_t>& output_classes);

/// Average the successful slots in index order (eq. 8–10 batch semantics).
/// Shared by explain_batched_isolated and the serving plane's multi-input
/// requests, so both produce bitwise-identical aggregates for the same slots.
/// `C`/`k` are the model's concept/level counts (for dominant-level rebuild).
Explanation aggregate_explanations(const EachExplainResult& each, std::size_t C,
                                   std::size_t k);

}  // namespace agua::core
