#include "abr/describe.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "abr/env.hpp"
#include "common/stats.hpp"

namespace agua::abr {
namespace {

std::vector<double> block(const std::vector<double>& obs, std::size_t offset,
                          std::size_t count) {
  return {obs.begin() + static_cast<std::ptrdiff_t>(offset),
          obs.begin() + static_cast<std::ptrdiff_t>(offset + count)};
}

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

AbrDescriber::AbrDescriber() : concepts_(concepts::abr_concepts()) {}

AbrDescriber::AbrDescriber(concepts::ConceptSet concept_set)
    : concepts_(std::move(concept_set)) {}

std::vector<std::pair<std::string, double>> AbrDescriber::detect_concepts(
    const std::vector<double>& obs) const {
  const auto quality = block(obs, ObsLayout::kQuality, kHistory);
  const auto transmit = block(obs, ObsLayout::kTransmitTime, kHistory);
  const auto throughput = block(obs, ObsLayout::kThroughput, kHistory);
  const auto buffer = block(obs, ObsLayout::kBuffer, kHistory);
  const auto stall = block(obs, ObsLayout::kStall, kHistory);
  const auto up_quality = block(obs, ObsLayout::kUpcomingQuality, kHorizon);
  const auto up_size = block(obs, ObsLayout::kUpcomingSize, kHorizon);

  const double thr_mean = common::mean(throughput);
  const double thr_cv = thr_mean > 1e-6 ? common::stddev(throughput) / thr_mean : 0.0;
  const double thr_slope = common::slope(throughput) * static_cast<double>(kHistory - 1);
  const double tt_mean = common::mean(transmit);
  const double tt_slope = common::slope(transmit) * static_cast<double>(kHistory - 1);
  const double buf_last = buffer.back();
  const double buf_slope = common::slope(buffer) * static_cast<double>(kHistory - 1);
  const double buf_cv = common::stddev(buffer) / 15.0;
  const double q_change = common::stddev(quality) / 25.0;
  const double size_mean = common::mean(up_size);
  const double stall_total = common::mean(stall);
  // Startup: leading history slots still zeroed out.
  std::size_t zero_prefix = 0;
  while (zero_prefix < kHistory && quality[zero_prefix] == 0.0 &&
         throughput[zero_prefix] == 0.0) {
    ++zero_prefix;
  }
  const double startup_score = static_cast<double>(zero_prefix) / kHistory;
  // Recent improvement: last two transmit times falling / throughput rising.
  const double recent_tt_drop =
      transmit[kHistory - 2] > 1e-6
          ? (transmit[kHistory - 2] - transmit[kHistory - 1]) / transmit[kHistory - 2]
          : 0.0;
  const double recent_thr_rise =
      throughput[kHistory - 2] > 1e-6
          ? (throughput[kHistory - 1] - throughput[kHistory - 2]) / throughput[kHistory - 2]
          : 0.0;

  std::vector<std::pair<std::string, double>> scores;
  scores.reserve(concepts_.size());
  auto add = [&](const char* name, double score) {
    // Only emit scores for concepts present in the (possibly subset) set.
    if (concepts_.index_of(name) != static_cast<std::size_t>(-1)) {
      scores.emplace_back(name, clamp01(score));
    }
  };

  add("Volatile Network Throughput", thr_cv * 2.2);
  add("Rapidly Depleting Buffer",
      (-buf_slope / 6.0) + (buf_last < 4.0 ? 0.3 : 0.0) + stall_total * 0.5);
  add("Low Content Complexity", (0.85 - size_mean) * 1.4);
  add("Recent Network Improvement",
      std::max(recent_tt_drop * 1.8, recent_thr_rise * 1.5));
  add("Extreme Network Degradation",
      (tt_slope / 2.5) + (tt_mean > 1.5 ? 0.3 : 0.0) + (thr_slope < -0.4 ? 0.25 : 0.0));
  add("Moderate Network Throughput",
      1.0 - std::abs(thr_mean - 1.1) / 0.8 - thr_cv * 0.8);
  add("Anticipation of Network Congestion",
      (-thr_slope / 2.0) + (buf_last > 6.0 ? 0.1 : 0.0));
  add("Content requiring High Quality", (size_mean - 1.0) * 1.3);
  add("Stable Buffer", (buf_last > 6.0 ? 0.5 : 0.1) + (0.12 - buf_cv) * 3.0);
  add("Nearly Full Buffer", (buf_last - 11.0) / 4.0);
  add("Startup of video", startup_score * 1.2);
  add("High Content Complexity", (size_mean - 1.05) * 1.5 + q_change * 0.5);
  add("Network volatility needing switches", thr_cv * 1.4 + q_change * 1.5);
  add("Avoiding Large Quality Fluctuations",
      (thr_cv > 0.15 ? 0.3 : 0.0) + (0.08 - q_change) * 4.0);
  add("Switch to higher quality after startup",
      startup_score * 0.6 + (common::slope(quality) > 0.3 ? 0.4 : 0.0));
  add("High Network Throughput", (thr_mean - 1.5) / 1.0 - thr_cv * 0.5);
  // Concepts not covered above (subset configurations) default to 0 score.
  for (const auto& c : concepts_.concepts()) {
    bool present = false;
    for (const auto& [name, score] : scores) {
      if (name == c.name) {
        present = true;
        break;
      }
    }
    if (!present) scores.emplace_back(c.name, 0.0);
  }
  return scores;
}

std::string AbrDescriber::describe(const std::vector<double>& obs) const {
  return describe(obs, text::DescriberOptions{});
}

std::string AbrDescriber::describe(const std::vector<double>& obs,
                                   const text::DescriberOptions& options) const {
  std::ostringstream os;
  os << text::describe_group(
            "Network conditions",
            {{"Transmission Time of Chunk", block(obs, ObsLayout::kTransmitTime, kHistory),
              20.0},
             {"Network Throughput", block(obs, ObsLayout::kThroughput, kHistory), 10.0}},
            options)
     << '\n';
  // Qualitative throughput magnitude (numbers are elided by the embedder's
  // tokenizer, so the level must be stated in words — as the LLM does).
  {
    const double thr_mean = common::mean(block(obs, ObsLayout::kThroughput, kHistory));
    const char* level = thr_mean < 0.3   ? "a starved, barely usable"
                        : thr_mean < 0.8 ? "a low cellular-grade"
                        : thr_mean < 1.4 ? "a moderate mid-tier"
                        : thr_mean < 2.2 ? "a high broadband-grade"
                                         : "a very high fiber-grade";
    os << "The average delivery rate corresponds to " << level
       << " connection level.\n";
  }
  os << text::describe_group(
            "Viewer's video buffer",
            {{"Client Buffer", block(obs, ObsLayout::kBuffer, kHistory), 15.0}}, options)
     << '\n';
  os << text::describe_group(
            "Viewer's Quality of Experience",
            {{"Quality of Experience", block(obs, ObsLayout::kQoe, kHistory), 5.0},
             {"Stalling", block(obs, ObsLayout::kStall, kHistory), 3.0}},
            options)
     << '\n';
  os << text::describe_group(
            "Upcoming video sizes",
            {{"Mean Upcoming Video Sizes", block(obs, ObsLayout::kUpcomingSize, kHorizon),
              3.0}},
            options)
     << '\n';
  os << text::describe_group(
            "Upcoming video qualities",
            {{"Mean Upcoming Video Qualities",
              block(obs, ObsLayout::kUpcomingQuality, kHorizon), 25.0}},
            options)
     << '\n';

  // Closing concept-correlation sentence: the top detected concepts.
  auto detected = detect_concepts(obs);
  std::stable_sort(detected.begin(), detected.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> mentioned;
  for (const auto& [name, score] : detected) {
    if (score > 0.15 && mentioned.size() < 5) {
      // Echo the concept's own phrasing, as the LLM does when the concepts
      // (with descriptions) are part of its prompt (Fig. 15).
      const std::size_t index = concepts_.index_of(name);
      const std::string& description = concepts_.at(index).description;
      // A human annotator names the concept with a short gloss; the LLM
      // echoes the full first clause of the prompt's concept description.
      const std::string clause = description.substr(0, description.find(','));
      const std::string gloss = clause.substr(0, clause.find(' ', 24));
      mentioned.push_back(name + " (" + (options.human_style ? gloss : clause) + ")");
    }
  }
  if (mentioned.empty() && !detected.empty()) mentioned.push_back(detected.front().first);
  os << text::concept_correlation_summary(mentioned, options);
  return os.str();
}

}  // namespace agua::abr
