file(REMOVE_RECURSE
  "CMakeFiles/agua_core.dir/concept_mapping.cpp.o"
  "CMakeFiles/agua_core.dir/concept_mapping.cpp.o.d"
  "CMakeFiles/agua_core.dir/datastore.cpp.o"
  "CMakeFiles/agua_core.dir/datastore.cpp.o.d"
  "CMakeFiles/agua_core.dir/drift.cpp.o"
  "CMakeFiles/agua_core.dir/drift.cpp.o.d"
  "CMakeFiles/agua_core.dir/explain.cpp.o"
  "CMakeFiles/agua_core.dir/explain.cpp.o.d"
  "CMakeFiles/agua_core.dir/intervene.cpp.o"
  "CMakeFiles/agua_core.dir/intervene.cpp.o.d"
  "CMakeFiles/agua_core.dir/labeler.cpp.o"
  "CMakeFiles/agua_core.dir/labeler.cpp.o.d"
  "CMakeFiles/agua_core.dir/model_io.cpp.o"
  "CMakeFiles/agua_core.dir/model_io.cpp.o.d"
  "CMakeFiles/agua_core.dir/output_mapping.cpp.o"
  "CMakeFiles/agua_core.dir/output_mapping.cpp.o.d"
  "CMakeFiles/agua_core.dir/pipeline.cpp.o"
  "CMakeFiles/agua_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/agua_core.dir/regression.cpp.o"
  "CMakeFiles/agua_core.dir/regression.cpp.o.d"
  "CMakeFiles/agua_core.dir/report.cpp.o"
  "CMakeFiles/agua_core.dir/report.cpp.o.d"
  "CMakeFiles/agua_core.dir/surrogate.cpp.o"
  "CMakeFiles/agua_core.dir/surrogate.cpp.o.d"
  "CMakeFiles/agua_core.dir/validate.cpp.o"
  "CMakeFiles/agua_core.dir/validate.cpp.o.d"
  "libagua_core.a"
  "libagua_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agua_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
