file(REMOVE_RECURSE
  "../bench/baseline_local_explainer"
  "../bench/baseline_local_explainer.pdb"
  "CMakeFiles/baseline_local_explainer.dir/baseline_local_explainer.cpp.o"
  "CMakeFiles/baseline_local_explainer.dir/baseline_local_explainer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_local_explainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
