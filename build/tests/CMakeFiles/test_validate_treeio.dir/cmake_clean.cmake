file(REMOVE_RECURSE
  "CMakeFiles/test_validate_treeio.dir/test_validate_treeio.cpp.o"
  "CMakeFiles/test_validate_treeio.dir/test_validate_treeio.cpp.o.d"
  "test_validate_treeio"
  "test_validate_treeio.pdb"
  "test_validate_treeio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validate_treeio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
