#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace agua::nn;

Matrix random_logits(std::size_t r, std::size_t c, agua::common::Rng& rng) {
  Matrix m(r, c);
  for (double& x : m.data()) x = rng.uniform(-2.0, 2.0);
  return m;
}

TEST(Loss, CrossEntropyPerfectPredictionIsSmall) {
  Matrix logits = Matrix::from_rows({{20.0, 0.0, 0.0}});
  Matrix grad;
  const double loss = cross_entropy_loss(logits, {0}, grad);
  EXPECT_LT(loss, 1e-6);
}

TEST(Loss, CrossEntropyUniformIsLogN) {
  Matrix logits(1, 4, 0.0);
  Matrix grad;
  const double loss = cross_entropy_loss(logits, {2}, grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-9);
}

TEST(Loss, CrossEntropyGradientNumericallyCorrect) {
  agua::common::Rng rng(1);
  Matrix logits = random_logits(3, 4, rng);
  const std::vector<std::size_t> targets = {1, 3, 0};
  Matrix grad;
  cross_entropy_loss(logits, targets, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits;
    Matrix minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    Matrix tmp;
    const double numeric =
        (cross_entropy_loss(plus, targets, tmp) - cross_entropy_loss(minus, targets, tmp)) /
        (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 1e-6);
  }
}

TEST(Loss, CrossEntropyGradientRowsSumToZero) {
  agua::common::Rng rng(2);
  Matrix logits = random_logits(2, 5, rng);
  Matrix grad;
  cross_entropy_loss(logits, {0, 4}, grad);
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 5; ++c) total += grad.at(r, c);
    EXPECT_NEAR(total, 0.0, 1e-12);
  }
}

TEST(Loss, MultilabelConceptLossGradientNumericallyCorrect) {
  agua::common::Rng rng(3);
  const std::size_t C = 3;
  const std::size_t k = 3;
  Matrix logits = random_logits(2, C * k, rng);
  const std::vector<std::vector<std::size_t>> targets = {{0, 2, 1}, {1, 1, 0}};
  Matrix grad;
  multilabel_concept_loss(logits, targets, C, k, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits;
    Matrix minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    Matrix tmp;
    const double numeric = (multilabel_concept_loss(plus, targets, C, k, tmp) -
                            multilabel_concept_loss(minus, targets, C, k, tmp)) /
                           (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 1e-6);
  }
}

TEST(Loss, MultilabelLossDecreasesTowardTargets) {
  const std::size_t C = 2;
  const std::size_t k = 3;
  Matrix good(1, C * k, 0.0);
  good.at(0, 0 * k + 1) = 10.0;  // concept 0 -> level 1
  good.at(0, 1 * k + 2) = 10.0;  // concept 1 -> level 2
  Matrix bad(1, C * k, 0.0);
  const std::vector<std::vector<std::size_t>> targets = {{1, 2}};
  Matrix tmp;
  EXPECT_LT(multilabel_concept_loss(good, targets, C, k, tmp),
            multilabel_concept_loss(bad, targets, C, k, tmp));
}

TEST(Loss, MseKnownValue) {
  const Matrix pred = Matrix::from_rows({{1.0, 2.0}});
  const Matrix target = Matrix::from_rows({{0.0, 4.0}});
  Matrix grad;
  EXPECT_NEAR(mse_loss(pred, target, grad), (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad.at(0, 0), 1.0, 1e-12);     // 2*(1-0)/2
  EXPECT_NEAR(grad.at(0, 1), -2.0, 1e-12);    // 2*(2-4)/2
}

TEST(Loss, SoftCrossEntropyGradientNumericallyCorrect) {
  agua::common::Rng rng(4);
  Matrix logits = random_logits(2, 3, rng);
  Matrix targets = Matrix::from_rows({{0.7, 0.2, 0.1}, {0.1, 0.1, 0.8}});
  Matrix grad;
  soft_cross_entropy_loss(logits, targets, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits;
    Matrix minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    Matrix tmp;
    const double numeric = (soft_cross_entropy_loss(plus, targets, tmp) -
                            soft_cross_entropy_loss(minus, targets, tmp)) /
                           (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 1e-6);
  }
}

TEST(Loss, PolicyGradientPushesTowardPositiveAdvantageAction) {
  Matrix logits(1, 3, 0.0);
  Matrix grad;
  policy_gradient_loss(logits, {1}, {2.0}, 0.0, grad);
  // Gradient descent direction: -grad increases logit of action 1.
  EXPECT_LT(grad.at(0, 1), 0.0);
  EXPECT_GT(grad.at(0, 0), 0.0);
  EXPECT_GT(grad.at(0, 2), 0.0);
}

TEST(Loss, PolicyGradientNegativeAdvantageReverses) {
  Matrix logits(1, 3, 0.0);
  Matrix grad;
  policy_gradient_loss(logits, {1}, {-2.0}, 0.0, grad);
  EXPECT_GT(grad.at(0, 1), 0.0);
}

TEST(Loss, EntropyBonusFlattensDistribution) {
  // A peaked distribution: entropy gradient should push logits toward
  // uniform (descending the loss raises entropy).
  Matrix logits = Matrix::from_rows({{5.0, 0.0, 0.0}});
  Matrix grad;
  policy_gradient_loss(logits, {0}, {0.0}, 0.5, grad);
  // With zero advantage the only force is entropy: reduce the peak logit.
  EXPECT_GT(grad.at(0, 0), 0.0);
  EXPECT_LT(grad.at(0, 1), 0.0);
}

}  // namespace
