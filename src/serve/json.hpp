// Minimal recursive-descent JSON reader for the serving plane's request
// bodies (serve/service.cpp). The obs layer only *emits* JSON
// (obs/json.hpp); this is the first place the process must *parse* untrusted
// JSON, so the reader is strict (no trailing garbage, bounded depth) and
// never throws — a malformed body becomes a 400, not an exception.
//
// Deliberate non-goals: full unicode escapes (\uXXXX outside latin-1),
// streaming, and number fidelity beyond double (the request schema carries
// only feature vectors, row ids and small flags).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace agua::serve {

/// One parsed JSON value. Object keys keep insertion order irrelevant
/// (std::map) — request schemas are looked up by name, never iterated.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member by key, or nullptr (also when this is not an object).
  const JsonValue* find(std::string_view key) const;
};

/// Parse result: `ok` false means `error` holds a one-line diagnosis with a
/// byte offset — exactly what a 400 body should echo back.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
};

/// Strict parse of a complete JSON document: trailing non-whitespace bytes
/// are an error, nesting deeper than `max_depth` is an error (stack safety
/// against adversarial bodies).
JsonParseResult json_parse(std::string_view text, std::size_t max_depth = 32);

}  // namespace agua::serve
