#include "core/explain.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/stats.hpp"

namespace {

using namespace agua;
using namespace agua::core;

AguaModel make_model(std::uint64_t seed = 1) {
  common::Rng rng(seed);
  ConceptMapping::Config cm;
  cm.embedding_dim = 4;
  cm.num_concepts = 3;
  cm.num_levels = 3;
  ConceptMapping mapping(cm, rng);
  OutputMapping::Config om;
  om.concept_dim = 9;
  om.num_outputs = 4;
  OutputMapping output(om, rng);
  return AguaModel(concepts::cc_concepts().prefix(3), std::move(mapping),
                   std::move(output));
}

TEST(Explain, FactualTargetsPredictedClass) {
  AguaModel model = make_model();
  const std::vector<double> h = {0.1, -0.4, 0.7, 0.2};
  const Explanation exp = explain_factual(model, h);
  EXPECT_EQ(exp.output_class, model.predict_class(h));
  EXPECT_EQ(exp.output_class, exp.predicted_class);
}

TEST(Explain, WeightsSumToOutputProbability) {
  AguaModel model = make_model(2);
  const std::vector<double> h = {0.3, 0.1, -0.2, 0.9};
  const Explanation exp = explain_factual(model, h);
  const double total =
      std::accumulate(exp.concept_weights.begin(), exp.concept_weights.end(), 0.0);
  EXPECT_NEAR(total, exp.output_probability, 1e-9);
  // And the probability matches the surrogate's softmax output.
  EXPECT_NEAR(exp.output_probability, model.output_probs(h)[exp.output_class], 1e-9);
}

TEST(Explain, WeightsNonNegative) {
  AguaModel model = make_model(3);
  const Explanation exp = explain_factual(model, {0.5, 0.5, 0.5, 0.5});
  for (double w : exp.concept_weights) EXPECT_GE(w, 0.0);
}

TEST(Explain, RawContributionsReconstructLogit) {
  AguaModel model = make_model(4);
  const std::vector<double> h = {0.2, -0.1, 0.4, -0.6};
  const std::size_t cls = 2;
  const Explanation exp = explain_for_class(model, h, cls);
  // Eq. 8: summing the Hadamard contributions recovers the class logit.
  const double reconstructed =
      std::accumulate(exp.raw_contributions.begin(), exp.raw_contributions.end(), 0.0);
  EXPECT_NEAR(reconstructed, model.logits(h)[cls], 1e-9);
}

TEST(Explain, CounterfactualClassHonored) {
  AguaModel model = make_model(5);
  const std::vector<double> h = {0.1, 0.2, 0.3, 0.4};
  for (std::size_t cls = 0; cls < 4; ++cls) {
    const Explanation exp = explain_for_class(model, h, cls);
    EXPECT_EQ(exp.output_class, cls);
    EXPECT_NEAR(exp.output_probability, model.output_probs(h)[cls], 1e-9);
  }
}

TEST(Explain, ProbabilitiesAcrossClassesSumToOne) {
  AguaModel model = make_model(6);
  const std::vector<double> h = {0.7, -0.7, 0.1, 0.0};
  double total = 0.0;
  for (std::size_t cls = 0; cls < 4; ++cls) {
    total += explain_for_class(model, h, cls).output_probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Explain, TopConceptsSortedByWeight) {
  AguaModel model = make_model(7);
  const Explanation exp = explain_factual(model, {0.9, 0.1, -0.3, 0.5});
  const auto top = exp.top_concepts(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(exp.concept_weights[top[0]], exp.concept_weights[top[1]]);
  EXPECT_GE(exp.concept_weights[top[1]], exp.concept_weights[top[2]]);
}

TEST(Explain, BatchedEqualsMeanOfSingles) {
  AguaModel model = make_model(8);
  const std::vector<std::vector<double>> batch = {
      {0.1, 0.2, 0.3, 0.4}, {0.4, 0.3, 0.2, 0.1}, {-0.5, 0.5, -0.5, 0.5}};
  const Explanation batched = explain_batched(model, batch, 1);
  std::vector<double> manual(model.num_concepts(), 0.0);
  for (const auto& h : batch) {
    const Explanation single = explain_for_class(model, h, 1);
    for (std::size_t c = 0; c < manual.size(); ++c) {
      manual[c] += single.concept_weights[c];
    }
  }
  for (double& m : manual) m /= static_cast<double>(batch.size());
  for (std::size_t c = 0; c < manual.size(); ++c) {
    EXPECT_NEAR(batched.concept_weights[c], manual[c], 1e-9);
  }
}

TEST(Explain, BatchedEmptyIsSafe) {
  AguaModel model = make_model(9);
  const Explanation exp = explain_batched(model, {});
  EXPECT_TRUE(exp.concept_weights.empty());
}

TEST(Explain, FormatShowsTopConceptNames) {
  AguaModel model = make_model(10);
  const Explanation exp = explain_factual(model, {0.2, 0.2, 0.2, 0.2});
  const std::string text = exp.format(2);
  EXPECT_NE(text.find("Explanation for output class"), std::string::npos);
  // At least one of the CC concept names appears.
  EXPECT_TRUE(text.find("Packet Loss") != std::string::npos ||
              text.find("Stable Network Conditions") != std::string::npos ||
              text.find("Latency") != std::string::npos);
}

}  // namespace
