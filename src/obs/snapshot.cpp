#include "obs/snapshot.hpp"

namespace agua::obs {

bool Snapshot::all_healthy() const {
  for (const HealthMonitorSnapshot& monitor : monitors) {
    if (!monitor.healthy) return false;
  }
  return true;
}

Snapshot capture_snapshot(const SnapshotOptions& options) {
  Snapshot snap;
  snap.captured_ns = now_ns();
  snap.metrics = MetricsRegistry::instance().snapshot();
  if (options.include_spans) snap.spans = collect_spans();
  if (options.include_events) {
    snap.events = event_log().snapshot();
    if (options.event_tail > 0 && snap.events.size() > options.event_tail) {
      snap.events.erase(snap.events.begin(),
                        snap.events.end() - static_cast<std::ptrdiff_t>(options.event_tail));
    }
  }
  if (options.include_monitors) snap.monitors = snapshot_monitors();
  return snap;
}

}  // namespace agua::obs
