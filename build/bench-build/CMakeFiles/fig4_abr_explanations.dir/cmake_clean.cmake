file(REMOVE_RECURSE
  "../bench/fig4_abr_explanations"
  "../bench/fig4_abr_explanations.pdb"
  "CMakeFiles/fig4_abr_explanations.dir/fig4_abr_explanations.cpp.o"
  "CMakeFiles/fig4_abr_explanations.dir/fig4_abr_explanations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_abr_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
