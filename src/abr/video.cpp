#include "abr/video.hpp"

#include <algorithm>
#include <cmath>

namespace agua::abr {

VideoManifest VideoManifest::generate(std::size_t chunk_count, common::Rng& rng) {
  VideoManifest manifest;
  manifest.chunks.reserve(chunk_count);
  // Nominal ladder at complexity 1.0. Sizes in Mb for a 2-second chunk,
  // SSIM in dB, both roughly matching the Fig. 15 example scales
  // (sizes max=3, qualities max=25).
  constexpr std::array<double, kQualityLevels> base_size = {0.25, 0.60, 1.10, 1.80, 2.60};
  constexpr std::array<double, kQualityLevels> base_ssim = {10.5, 13.5, 16.5, 19.5, 22.5};
  double complexity = 1.0;
  std::size_t scene_remaining = 0;
  double scene_target = 1.0;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    if (scene_remaining == 0) {
      // New scene: pick a complexity target; scenes last 10-40 chunks.
      scene_target = rng.uniform(0.55, 1.5);
      scene_remaining = static_cast<std::size_t>(rng.uniform_int(10, 40));
    }
    --scene_remaining;
    complexity += 0.3 * (scene_target - complexity) + rng.normal(0.0, 0.02);
    complexity = std::clamp(complexity, 0.4, 1.7);
    ChunkLadder ladder;
    ladder.complexity = complexity;
    for (std::size_t q = 0; q < kQualityLevels; ++q) {
      // Complex content needs more bits at equal quality and scores lower
      // SSIM at equal bitrate.
      ladder.size_mb[q] =
          std::min(3.0, base_size[q] * complexity * rng.uniform(0.92, 1.08));
      ladder.ssim_db[q] =
          std::clamp(base_ssim[q] - 3.0 * (complexity - 1.0) + rng.normal(0.0, 0.2),
                     5.0, 25.0);
    }
    manifest.chunks.push_back(ladder);
  }
  return manifest;
}

}  // namespace agua::abr
