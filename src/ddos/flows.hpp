// Synthetic packet-flow generator standing in for the CIC-DDoS2019 capture
// (DESIGN.md substitution table). Generates benign application flows and the
// attack classes LUCID is evaluated on, with the statistical signatures the
// detector keys on: SYN-without-handshake floods, payload-less high-rate
// packets, machine-regular inter-arrival times, and low-and-slow trickles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace agua::ddos {

enum class FlowType {
  kBenignWeb,        ///< normal HTTP request/response exchange
  kBenignStreaming,  ///< media session: steady inbound data + outbound acks
  kSynFlood,         ///< TCP SYN flood (no handshake completion)
  kUdpFlood,         ///< volumetric UDP flood with padded payloads
  kLowAndSlow,       ///< slowloris-style resource exhaustion
};

const char* flow_type_name(FlowType type);
bool is_attack(FlowType type);

/// One packet as seen at the victim's vantage point.
struct Packet {
  double iat_ms = 0.0;        ///< inter-arrival time since previous packet
  double size_bytes = 0.0;    ///< on-wire size
  double payload_bytes = 0.0; ///< application payload carried
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool is_udp = false;
  bool inbound = true;        ///< toward the protected service
};

/// A labelled flow.
struct Flow {
  FlowType type = FlowType::kBenignWeb;
  std::vector<Packet> packets;

  bool attack() const { return is_attack(type); }
};

/// Generate one flow of the given type (20-60 packets).
Flow generate_flow(FlowType type, common::Rng& rng);

/// Generate a labelled dataset with the given attack fraction; attack flows
/// cycle through the attack classes. Order is shuffled.
std::vector<Flow> generate_dataset(std::size_t count, double attack_fraction,
                                   common::Rng& rng);

/// Generate a batch of one specific type (for the Fig. 6 explanations).
std::vector<Flow> generate_flows(FlowType type, std::size_t count, common::Rng& rng);

}  // namespace agua::ddos
