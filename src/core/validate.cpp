#include "core/validate.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace agua::core {

std::string DescriberValidation::format() const {
  std::ostringstream os;
  os << "Describer validation: " << (passed ? "PASSED" : "FAILED") << " ("
     << inputs_checked << " inputs";
  if (!issues.empty()) os << ", " << issues.size() << " issue(s)";
  os << ")\n";
  for (const Issue& issue : issues) {
    os << "  [" << issue.check << "] " << issue.detail << '\n';
  }
  return os.str();
}

DescriberValidation validate_describer(const DescribeFn& describe,
                                       const Dataset& dataset,
                                       const concepts::ConceptSet& concept_set,
                                       const ValidationOptions& options) {
  DescriberValidation result;
  auto fail = [&](std::string check, std::string detail) {
    result.passed = false;
    result.issues.push_back({std::move(check), std::move(detail)});
  };

  const std::size_t limit =
      options.max_inputs == 0 ? dataset.size()
                              : std::min(options.max_inputs, dataset.size());
  std::unordered_set<std::string> distinct;
  const text::DescriberOptions deterministic;
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& input = dataset.samples[i].input;
    const std::string description = describe(input, deterministic);
    ++result.inputs_checked;

    if (description.empty()) {
      fail("non-empty", "input " + std::to_string(i) + " produced empty text");
      continue;
    }
    for (const std::string& section : options.required_sections) {
      if (description.find(section) == std::string::npos) {
        fail("sections", "input " + std::to_string(i) + " missing '" + section + "'");
      }
    }
    if (description.find("key concept") == std::string::npos) {
      fail("concept-correlation",
           "input " + std::to_string(i) + " has no concept correlation sentence");
    } else {
      // At least one base concept must be named.
      bool mentions_any = false;
      for (const auto& name : concept_set.names()) {
        if (description.find(name) != std::string::npos) {
          mentions_any = true;
          break;
        }
      }
      if (!mentions_any) {
        fail("concept-mention",
             "input " + std::to_string(i) + " names no base concept");
      }
    }
    if (describe(input, deterministic) != description) {
      fail("determinism",
           "input " + std::to_string(i) + " differs across temperature-0 calls");
    }
    distinct.insert(description);
  }

  if (result.inputs_checked > 1) {
    const double fraction = static_cast<double>(distinct.size()) /
                            static_cast<double>(result.inputs_checked);
    if (fraction < options.min_distinct_fraction) {
      fail("sensitivity",
           "only " + std::to_string(distinct.size()) + " distinct descriptions for " +
               std::to_string(result.inputs_checked) +
               " inputs (describer may be input-insensitive)");
    }
  }
  return result;
}

}  // namespace agua::core
