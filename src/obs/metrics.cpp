#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <tuple>
#include <utility>

namespace agua::obs {
namespace {

std::atomic<bool> g_enabled{true};

void atomic_fetch_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_fetch_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_fetch_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void set_enabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Counter::add(std::uint64_t n) {
  if (!enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) {
  if (!enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::add(double delta) {
  if (!enabled()) return;
  atomic_fetch_add_double(value_, delta);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Linearly interpolate inside the bucket, then clamp to the observed
      // range so degenerate distributions report exact values.
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.resize(bounds_.size() + 1);
  reset();
}

std::size_t Histogram::bucket_index(double value) const {
  return static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
}

void Histogram::record(double value) {
  if (!enabled()) return;
  const std::size_t index = bucket_index(value);
  // Ordering matters for scrape consistency: sum/min/max first, the bucket
  // increment last, so a snapshot that counts a sample (via its bucket) has
  // already seen its sum/min/max contributions in the common case.
  atomic_fetch_add_double(sum_, value);
  atomic_fetch_min(min_, value);
  atomic_fetch_max(max_, value);
  buckets_[index].fetch_add(1, std::memory_order_release);
}

void Histogram::record(double value, const Exemplar& exemplar) {
  if (!enabled()) return;
  record(value);
  if (!exemplar.valid()) return;
  const std::int64_t last = last_exemplar_ns_.load(std::memory_order_relaxed);
  if (last != 0 && exemplar.ts_ns - last < kMinExemplarGapNs) return;
  last_exemplar_ns_.store(exemplar.ts_ns, std::memory_order_relaxed);
  const std::size_t index = bucket_index(value);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplars_.empty()) exemplars_.resize(buckets_.size());
  exemplars_[index] = exemplar;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    // Acquire pairs with record()'s release increment: counting a sample here
    // means its sum/min/max contributions are visible below.
    snap.bucket_counts.push_back(bucket.load(std::memory_order_acquire));
  }
  // Derive count from the buckets just read instead of loading count_: a
  // record() racing with this snapshot could otherwise land between the
  // bucket reads and the count read, making `_count` disagree with the
  // cumulative `+Inf` bucket in every exporter (the torn-read Prometheus
  // scrapers reject). The buckets themselves are each read once, so the
  // invariant count == Σ bucket_counts holds in the copy by construction.
  snap.count = 0;
  for (const std::uint64_t c : snap.bucket_counts) snap.count += c;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) {
    snap.min = 0.0;
    snap.max = 0.0;
    snap.sum = 0.0;
  } else {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    // Defensive: reset() racing a record() could still leave an inverted
    // pair; report an empty range rather than ±inf.
    if (snap.min > snap.max) {
      snap.min = 0.0;
      snap.max = 0.0;
    }
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    snap.exemplars = exemplars_;
  }
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  last_exemplar_ns_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  exemplars_.clear();
}

const std::vector<double>& Histogram::default_latency_bounds() {
  // Log-spaced (1, 2.5, 5 per decade) from 100 ns to 100 s, in seconds.
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    for (double decade = 1e-7; decade < 1e3; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(decade * 2.5);
      bounds.push_back(decade * 5.0);
    }
    return bounds;
  }();
  return kBounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

template <typename Store, typename... Args>
auto& MetricsRegistry::find_or_make(Store& store, std::string_view name,
                                    Args&&... args) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, metric] : store) {
    if (existing == name) return metric;
  }
  // Atomics are neither copyable nor movable, so build the metric in place.
  store.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                     std::forward_as_tuple(std::forward<Args>(args)...));
  return store.back().second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_make(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_make(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_make(histograms_, name, Histogram::default_latency_bounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  return find_or_make(histograms_, name, std::move(bounds));
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, metric] : counters_) {
      MetricSnapshot snap;
      snap.kind = MetricSnapshot::Kind::kCounter;
      snap.name = name;
      snap.counter_value = metric.value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, metric] : gauges_) {
      MetricSnapshot snap;
      snap.kind = MetricSnapshot::Kind::kGauge;
      snap.name = name;
      snap.gauge_value = metric.value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, metric] : histograms_) {
      MetricSnapshot snap;
      snap.kind = MetricSnapshot::Kind::kHistogram;
      snap.name = name;
      snap.histogram = metric.snapshot();
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric.reset();
  for (auto& [name, metric] : gauges_) metric.reset();
  for (auto& [name, metric] : histograms_) metric.reset();
}

void MetricsRegistry::reset_for_testing() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace agua::obs
