#include "core/train_guard.hpp"

#include <cmath>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace agua::core {

TrainDivergedError::TrainDivergedError(const std::string& stage, std::size_t epoch,
                                       std::size_t streak)
    : std::runtime_error("training diverged: stage " + stage + " hit " +
                         std::to_string(streak) + " consecutive non-finite batches at epoch " +
                         std::to_string(epoch)) {}

bool grads_finite(const std::vector<nn::Parameter*>& params) {
  for (const nn::Parameter* param : params) {
    for (double v : param->grad.data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

bool NonFiniteGuard::admit(const std::vector<double>& chunk_losses,
                           const std::vector<nn::Parameter*>& params, double& lr,
                           std::size_t epoch) {
  bool losses_finite = true;
  for (double loss : chunk_losses) {
    if (!std::isfinite(loss)) {
      losses_finite = false;
      break;
    }
  }
  if (losses_finite && grads_finite(params)) {
    if (consecutive_ > 0) {
      // Recovered: the backed-off rate did its job, return to the schedule.
      consecutive_ = 0;
      lr = base_lr_;
      obs::event_log().append("train.recover",
                              {{std::string("stage.") + stage_, 1.0},
                               {"epoch", static_cast<double>(epoch)},
                               {"lr", lr}});
    }
    return true;
  }

  ++consecutive_;
  ++total_;
  obs::MetricsRegistry::instance().counter("agua.train.nonfinite").add(1);
  if (consecutive_ >= max_consecutive_) throw TrainDivergedError(stage_, epoch, consecutive_);
  lr *= 0.5;
  obs::event_log().append("train.nonfinite",
                          {{std::string("stage.") + stage_, 1.0},
                           {"epoch", static_cast<double>(epoch)},
                           {"consecutive", static_cast<double>(consecutive_)},
                           {"lr", lr}});
  return false;
}

}  // namespace agua::core
