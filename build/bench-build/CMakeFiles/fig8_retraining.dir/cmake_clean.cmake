file(REMOVE_RECURSE
  "../bench/fig8_retraining"
  "../bench/fig8_retraining.pdb"
  "CMakeFiles/fig8_retraining.dir/fig8_retraining.cpp.o"
  "CMakeFiles/fig8_retraining.dir/fig8_retraining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
