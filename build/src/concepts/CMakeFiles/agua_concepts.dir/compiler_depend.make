# Empty compiler generated dependencies file for agua_concepts.
# This may be replaced when dependencies are built.
