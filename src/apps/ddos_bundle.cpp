#include "apps/ddos_bundle.hpp"

namespace agua::apps {

std::function<std::size_t(const std::vector<double>&)> DdosBundle::controller_fn() {
  ddos::DdosController* ctrl = controller.get();
  return [ctrl](const std::vector<double>& input) { return ctrl->classify(input); };
}

core::DescribeFn DdosBundle::describe_fn() const {
  const ddos::DdosDescriber* desc = &describer;
  return [desc](const std::vector<double>& input, const text::DescriberOptions& options) {
    return desc->describe(input, options);
  };
}

core::Dataset collect_ddos_dataset(ddos::DdosController& controller,
                                   const std::vector<ddos::Flow>& flows) {
  core::Dataset dataset;
  dataset.num_outputs = ddos::DdosController::kClasses;
  dataset.samples.reserve(flows.size());
  for (const ddos::Flow& flow : flows) {
    core::Sample sample;
    sample.input = ddos::extract_features(flow);
    sample.embedding = controller.embedding(sample.input);
    sample.output_probs = controller.output_probs(sample.input);
    sample.output_class = common::argmax(sample.output_probs);
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

DdosBundle make_ddos_bundle(std::uint64_t seed, std::size_t train_flows,
                            std::size_t test_flows) {
  DdosBundle bundle;
  bundle.controller = std::make_unique<ddos::DdosController>(seed);
  common::Rng rng(seed ^ 0xDD05);

  const auto training = ddos::generate_dataset(train_flows, 0.5, rng);
  const auto testing = ddos::generate_dataset(test_flows, 0.5, rng);
  ddos::train_supervised(*bundle.controller, training, /*epochs=*/40,
                         /*learning_rate=*/0.05, rng);
  bundle.test_accuracy = ddos::evaluate_accuracy(*bundle.controller, testing);
  bundle.train = collect_ddos_dataset(*bundle.controller, training);
  bundle.test = collect_ddos_dataset(*bundle.controller, testing);
  return bundle;
}

}  // namespace agua::apps
