// Synthetic network-trace substrate replacing the Puffer measurement data
// (DESIGN.md substitution table). Traces are per-second available-bandwidth
// series drawn from family-specific AR(1) log-bandwidth processes with
// occasional dropout events.
//
// Families:
//  * k3G / k4G / k5G / kBroadband — the workload families of Fig. 11.
//  * kPuffer2021 — stands in for the April-May 2021 training distribution.
//  * kPuffer2024 — stands in for the June 2024 deployment distribution:
//    higher mean throughput but markedly more volatility and more deep fades,
//    matching the drift narrative of §5.2.1 / Fig. 5 / Fig. 7.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace agua::abr {

enum class TraceFamily { k3G, k4G, k5G, kBroadband, kPuffer2021, kPuffer2024 };

const char* family_name(TraceFamily family);

/// A per-second available-bandwidth series (Mbps).
struct NetworkTrace {
  TraceFamily family = TraceFamily::kBroadband;
  std::vector<double> bandwidth_mbps;

  double bandwidth_at(double time_s) const;
  double duration_s() const { return static_cast<double>(bandwidth_mbps.size()); }
};

/// Generate one trace of the given family and duration.
NetworkTrace generate_trace(TraceFamily family, std::size_t seconds, common::Rng& rng);

/// Generate a batch of traces.
std::vector<NetworkTrace> generate_traces(TraceFamily family, std::size_t count,
                                          std::size_t seconds, common::Rng& rng);

}  // namespace agua::abr
