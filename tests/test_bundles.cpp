// Integration tests over the application bundles: the shared fixtures every
// bench builds on. These pin down dataset shapes, determinism, and the
// cross-module contracts (embedding dims, describers, controller adapters).
#include <gtest/gtest.h>

#include <set>

#include "apps/abr_bundle.hpp"
#include "apps/cc_bundle.hpp"
#include "apps/ddos_bundle.hpp"
#include "apps/noise.hpp"

namespace {

using namespace agua;

TEST(AbrBundle, ShapesAndAdapters) {
  apps::AbrBundle bundle = apps::make_abr_bundle(77, 300, 200);
  EXPECT_EQ(bundle.train.size(), 300u);
  EXPECT_EQ(bundle.test.size(), 200u);
  EXPECT_EQ(bundle.train.num_outputs, abr::AbrController::kActions);
  const core::Sample& s = bundle.train.samples.front();
  EXPECT_EQ(s.input.size(), abr::ObsLayout::kTotal);
  EXPECT_EQ(s.embedding.size(), 48u);
  EXPECT_EQ(s.output_probs.size(), abr::AbrController::kActions);
  EXPECT_EQ(s.output_class, common::argmax(s.output_probs));
  // Controller adapter matches the controller.
  auto fn = bundle.controller_fn();
  EXPECT_EQ(fn(s.input), bundle.controller->act(s.input));
  // Describe adapter produces template text.
  const std::string description =
      bundle.describe_fn()(s.input, text::DescriberOptions{});
  EXPECT_NE(description.find("Network conditions:"), std::string::npos);
}

TEST(AbrBundle, UsesMultipleActions) {
  apps::AbrBundle bundle = apps::make_abr_bundle(11, 400, 1);
  std::set<std::size_t> actions;
  for (const core::Sample& s : bundle.train.samples) actions.insert(s.output_class);
  EXPECT_GE(actions.size(), 3u);
}

TEST(AbrBundle, DeterministicAcrossBuilds) {
  apps::AbrBundle a = apps::make_abr_bundle(5, 50, 10);
  apps::AbrBundle b = apps::make_abr_bundle(5, 50, 10);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.samples[i].output_class, b.train.samples[i].output_class);
    EXPECT_EQ(a.train.samples[i].input, b.train.samples[i].input);
  }
}

TEST(AbrBundle, TraceEmbeddingsMatchRolloutLength) {
  apps::AbrBundle bundle = apps::make_abr_bundle(7, 20, 10);
  common::Rng rng(1);
  const auto traces = abr::generate_traces(abr::TraceFamily::k4G, 2, 80, rng);
  const auto embeddings =
      apps::collect_abr_trace_embeddings(*bundle.controller, traces, 25, rng);
  ASSERT_EQ(embeddings.size(), 2u);
  for (const auto& trace : embeddings) {
    EXPECT_EQ(trace.size(), 25u);
    EXPECT_EQ(trace.front().size(), 48u);
  }
}

TEST(CcBundle, ShapesAndDistributionSplit) {
  apps::CcBundle bundle = apps::make_cc_bundle(78, 300, 500);
  EXPECT_EQ(bundle.train.size(), 300u);
  EXPECT_EQ(bundle.test.size(), 500u);
  EXPECT_EQ(bundle.train.num_outputs, cc::CcController::kActions);
  const core::Sample& s = bundle.train.samples.front();
  EXPECT_EQ(s.input.size(), 40u);  // 10-MI history x 4 features
  EXPECT_EQ(s.embedding.size(), 32u);
  const std::string description =
      bundle.describe_fn()(s.input, text::DescriberOptions{});
  EXPECT_NE(description.find("Latency behavior:"), std::string::npos);
}

TEST(CcBundle, PolicyIsStateDependent) {
  apps::CcBundle bundle = apps::make_cc_bundle(12, 400, 1);
  std::set<std::size_t> actions;
  for (const core::Sample& s : bundle.train.samples) actions.insert(s.output_class);
  EXPECT_GE(actions.size(), 3u);
}

TEST(DdosBundle, PaperSplitSizes) {
  apps::DdosBundle bundle = apps::make_ddos_bundle(79);
  EXPECT_EQ(bundle.train.size(), 1000u);
  EXPECT_EQ(bundle.test.size(), 450u);
  EXPECT_GT(bundle.test_accuracy, 0.95);
}

TEST(DdosBundle, DatasetMatchesControllerOutputs) {
  apps::DdosBundle bundle = apps::make_ddos_bundle(80, 100, 50);
  for (const core::Sample& s : bundle.test.samples) {
    EXPECT_EQ(s.output_class, bundle.controller->classify(s.input));
  }
}

TEST(Noise, ZeroFractionIsIdentity) {
  common::Rng rng(3);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto y = apps::add_relative_noise(x, {1.0, 1.0, 1.0}, 0.0, rng);
  EXPECT_EQ(y, x);
}

TEST(Noise, MagnitudeScalesWithFeatureScale) {
  common::Rng rng(4);
  const std::vector<double> x(2, 0.0);
  const std::vector<double> scales = {1.0, 100.0};
  double small = 0.0;
  double large = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto y = apps::add_relative_noise(x, scales, 0.05, rng);
    small += y[0] * y[0];
    large += y[1] * y[1];
  }
  EXPECT_GT(large, small * 1000.0);
}

TEST(Noise, MissingScalesDefaultToUnit) {
  common::Rng rng(5);
  const std::vector<double> x = {0.0, 0.0};
  const auto y = apps::add_relative_noise(x, {2.0}, 0.1, rng);
  EXPECT_EQ(y.size(), 2u);  // no crash; second feature uses scale 1.0
}

}  // namespace
