# Empty compiler generated dependencies file for test_tokenizer_embedder.
# This may be replaced when dependencies are built.
