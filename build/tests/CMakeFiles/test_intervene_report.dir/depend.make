# Empty dependencies file for test_intervene_report.
# This may be replaced when dependencies are built.
