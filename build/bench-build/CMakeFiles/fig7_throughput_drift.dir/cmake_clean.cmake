file(REMOVE_RECURSE
  "../bench/fig7_throughput_drift"
  "../bench/fig7_throughput_drift.pdb"
  "CMakeFiles/fig7_throughput_drift.dir/fig7_throughput_drift.cpp.o"
  "CMakeFiles/fig7_throughput_drift.dir/fig7_throughput_drift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_throughput_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
