#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace {

using namespace agua::common;

TEST(Stats, MeanAndVariance) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
}

TEST(Stats, EmptyVectorsAreSafe) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(min_value({}), 0.0);
  EXPECT_DOUBLE_EQ(max_value({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(argmax({}), 0u);
}

TEST(Stats, Percentiles) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = b;
  for (double& x : c) x = -x;
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(a, std::vector<double>{1.0, 1.0, 1.0, 1.0}), 0.0);
}

TEST(Stats, SlopeOfLine) {
  const std::vector<double> v = {1.0, 3.0, 5.0, 7.0};
  EXPECT_NEAR(slope(v), 2.0, 1e-12);
  EXPECT_NEAR(slope({5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(Stats, EcdfMonotone) {
  const std::vector<double> samples = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ecdf(samples, 0.5), 0.0);
  EXPECT_NEAR(ecdf(samples, 1.5), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ecdf(samples, 3.0), 1.0);
}

TEST(Stats, KsIdenticalIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(Stats, KsDisjointIsOne) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {10.0, 11.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(Stats, KsSymmetricAndBounded) {
  agua::common::Rng rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(0.5, 1.2));
  }
  const double d1 = ks_statistic(a, b);
  const double d2 = ks_statistic(b, a);
  EXPECT_NEAR(d1, d2, 1e-12);
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
}

TEST(Stats, TopKIndicesOrdered) {
  const std::vector<double> v = {0.1, 0.9, 0.5, 0.7};
  const auto top = top_k_indices(v, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(Stats, TopKClampsToSize) {
  const std::vector<double> v = {0.1, 0.2};
  EXPECT_EQ(top_k_indices(v, 10).size(), 2u);
}

TEST(Stats, TopKRecall) {
  EXPECT_DOUBLE_EQ(top_k_recall({1, 2, 3}, {3, 2, 1}), 1.0);
  EXPECT_DOUBLE_EQ(top_k_recall({1, 2, 3}, {3, 9, 8}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(top_k_recall({}, {1}), 1.0);
}

TEST(Stats, SoftmaxSumsToOneAndOrders) {
  const auto p = softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Stats, SoftmaxStableForLargeLogits) {
  const auto p = softmax({1000.0, 1001.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
}

TEST(Stats, HistogramClampsOutliers) {
  const auto h = histogram({-5.0, 0.5, 1.5, 25.0}, 0.0, 2.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -5 clamped into bin 0
  EXPECT_EQ(h[1], 2u);  // 25 clamped into bin 1
}

TEST(Stats, NormalizeCounts) {
  const auto p = normalize_counts({1.0, 3.0});
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  const auto zero = normalize_counts({0.0, 0.0});
  EXPECT_DOUBLE_EQ(zero[0] + zero[1], 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  agua::common::Rng rng(9);
  RunningStats rs;
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    rs.add(x);
    v.push_back(x);
  }
  EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-9);
}

// Property sweep: KS statistic of a distribution against a shifted copy grows
// with the shift.
class KsShiftTest : public ::testing::TestWithParam<double> {};

TEST_P(KsShiftTest, GrowsWithShift) {
  const double shift = GetParam();
  agua::common::Rng rng(11);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.normal(0.0, 1.0);
    a.push_back(x);
    b.push_back(x + shift);
  }
  const double d = ks_statistic(a, b);
  if (shift == 0.0) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  } else {
    EXPECT_GT(d, shift / 10.0);
    EXPECT_LE(d, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, KsShiftTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

}  // namespace
