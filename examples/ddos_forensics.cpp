// DDoS forensics walkthrough (§5.1): train the LUCID-like detector, build
// Agua's surrogate, then ask *how* the detector recognizes each attack class
// — batched explanations per flow type, plus a counterfactual ("what would it
// take for this flood to look benign?").
#include <cstdio>

#include "apps/ddos_bundle.hpp"
#include "common/table.hpp"
#include "core/explain.hpp"

namespace {

std::vector<std::vector<double>> embeddings_for(agua::apps::DdosBundle& bundle,
                                                const std::vector<agua::ddos::Flow>& flows) {
  std::vector<std::vector<double>> out;
  out.reserve(flows.size());
  for (const auto& flow : flows) {
    out.push_back(bundle.controller->embedding(agua::ddos::extract_features(flow)));
  }
  return out;
}

}  // namespace

int main() {
  using namespace agua;

  std::printf("%s", common::section("Setup: detector + surrogate").c_str());
  apps::DdosBundle bundle = apps::make_ddos_bundle(/*seed=*/13);
  core::AguaConfig config;
  config.embedder = text::closed_source_embedder_config();
  common::Rng rng(51);
  core::AguaArtifacts agua = core::train_agua(bundle.train, bundle.describer.concept_set(),
                                              bundle.describe_fn(), config, rng);
  std::printf("detector accuracy %.3f, Agua fidelity %.3f\n", bundle.test_accuracy,
              core::fidelity(*agua.model, bundle.test));

  common::Rng flow_rng(52);
  const struct {
    ddos::FlowType type;
    const char* label;
  } cases[] = {
      {ddos::FlowType::kBenignWeb, "benign web sessions"},
      {ddos::FlowType::kSynFlood, "TCP SYN flood"},
      {ddos::FlowType::kUdpFlood, "UDP flood"},
      {ddos::FlowType::kLowAndSlow, "low-and-slow"},
  };
  for (const auto& c : cases) {
    std::printf("%s", common::section(std::string("How the detector reads: ") + c.label)
                          .c_str());
    const auto flows = ddos::generate_flows(c.type, 40, flow_rng);
    const core::Explanation exp =
        core::explain_batched(*agua.model, embeddings_for(bundle, flows));
    std::printf("%s", exp.format(4).c_str());
  }

  std::printf("%s", common::section("Counterfactual: a flood's route to 'benign'").c_str());
  const auto flood = ddos::generate_flow(ddos::FlowType::kSynFlood, flow_rng);
  const auto embedding = bundle.controller->embedding(ddos::extract_features(flood));
  std::printf("%s",
              core::explain_for_class(*agua.model, embedding, ddos::kBenignClass)
                  .format(4)
                  .c_str());
  std::printf(
      "\nThe counterfactual lists the concept levels that would have to hold\n"
      "for the benign class — the operator's view of the decision boundary.\n");
  return 0;
}
