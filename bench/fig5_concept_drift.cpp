// Fig. 5: concept-based distribution-shift detection. Roll the ABR
// controller over the 2021-era training traces and the 2024-era deployment
// traces, tag each trace with its top-3 concepts via Agua's batched
// explanations, and compare normalized concept proportions.
// Paper: 'volatile network throughput', 'rapidly depleting buffer', 'recent
// network improvement' and 'high complexity content' grow; 'stable buffer',
// 'extreme network degradation' shrink.
#include <cstdio>

#include "apps/abr_bundle.hpp"
#include "bench/bench_util.hpp"
#include "core/drift.hpp"

int main() {
  using namespace agua;
  bench::print_header("Figure 5", "Concept-level drift between 2021 and 2024 deployments");

  apps::AbrBundle bundle = apps::make_abr_bundle(11);
  core::AguaConfig config;
  config.embedder = text::closed_source_embedder_config();
  common::Rng rng(401);
  core::AguaArtifacts agua = core::train_agua(bundle.train, bundle.describer.concept_set(),
                                              bundle.describe_fn(), config, rng);

  common::Rng trace_rng(402);
  const auto traces_2021 =
      abr::generate_traces(abr::TraceFamily::kPuffer2021, 30, 140, trace_rng);
  const auto traces_2024 =
      abr::generate_traces(abr::TraceFamily::kPuffer2024, 30, 140, trace_rng);
  const auto emb_2021 =
      apps::collect_abr_trace_embeddings(*bundle.controller, traces_2021, 50, trace_rng);
  const auto emb_2024 =
      apps::collect_abr_trace_embeddings(*bundle.controller, traces_2024, 50, trace_rng);

  const core::DriftReport report =
      core::detect_concept_drift(*agua.model, emb_2021, emb_2024, /*top_k=*/3);
  std::printf("\nConcept proportions (A = 2021 training, B = 2024 deployment):\n%s",
              report.format().c_str());

  std::printf("\nConcepts with increased share in 2024 (retraining targets, 'red' set):\n");
  for (std::size_t c : report.increased) {
    std::printf("  +%.3f  %s\n", report.delta[c], report.concept_names[c].c_str());
  }
  std::printf("\nConcepts with decreased share in 2024:\n");
  for (std::size_t c : report.decreased) {
    std::printf("  %.3f  %s\n", report.delta[c], report.concept_names[c].c_str());
  }
  std::printf(
      "\nShape check: volatility/depletion-type concepts should grow while\n"
      "stable-buffer-type concepts shrink, mirroring Fig. 5.\n");
  return 0;
}
