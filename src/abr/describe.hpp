// Stage ② of Fig. 2 for ABR: converts an 80-dim controller observation into
// the structured Fig. 16 text description. Trend paragraphs come from the
// generic template engine; the closing "correlates with the key concept of"
// sentence comes from rule-based detectors over the same input features the
// paper's LLM sees (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "concepts/concept_set.hpp"
#include "text/describer.hpp"

namespace agua::abr {

class AbrDescriber {
 public:
  AbrDescriber();
  explicit AbrDescriber(concepts::ConceptSet concept_set);

  /// Deterministic description (temperature 0).
  std::string describe(const std::vector<double>& observation) const;

  /// Description with explicit options (noise / human-style variants).
  std::string describe(const std::vector<double>& observation,
                       const text::DescriberOptions& options) const;

  /// Rule-based concept detection: (concept name, score in [0,1]) for every
  /// base concept, in concept-set order.
  std::vector<std::pair<std::string, double>> detect_concepts(
      const std::vector<double>& observation) const;

  const concepts::ConceptSet& concept_set() const { return concepts_; }

 private:
  concepts::ConceptSet concepts_;
};

}  // namespace agua::abr
