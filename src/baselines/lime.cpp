#include "baselines/lime.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.hpp"
#include "common/string_util.hpp"

namespace agua::baselines {

std::vector<double> solve_ridge(std::vector<std::vector<double>> a,
                                std::vector<double> b, double ridge) {
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) a[i][i] += ridge;
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::abs(diag) < 1e-12) continue;  // singular direction: leave zero
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * x[k];
    x[i] = std::abs(a[i][i]) < 1e-12 ? 0.0 : acc / a[i][i];
  }
  return x;
}

LimeExplainer::LimeExplainer(std::vector<double> feature_scales, Options options)
    : scales_(std::move(feature_scales)), options_(options) {}

LimeExplainer::LimeExplainer(std::vector<double> feature_scales)
    : LimeExplainer(std::move(feature_scales), Options()) {}

LimeExplainer::Explanation LimeExplainer::explain(const ControllerProbFn& controller,
                                                  const std::vector<double>& input,
                                                  std::size_t target_class,
                                                  common::Rng& rng) const {
  const std::size_t d = input.size();
  Explanation exp;
  exp.target_class = target_class;

  // Perturbed neighbourhood in *scaled* coordinates (z-space).
  std::vector<std::vector<double>> z_samples(options_.num_samples,
                                             std::vector<double>(d));
  std::vector<double> y(options_.num_samples);
  std::vector<double> weights(options_.num_samples);
  std::vector<double> perturbed(d);
  for (std::size_t s = 0; s < options_.num_samples; ++s) {
    double distance_sq = 0.0;
    for (std::size_t f = 0; f < d; ++f) {
      const double scale = f < scales_.size() && scales_[f] != 0.0 ? scales_[f] : 1.0;
      const double dz = rng.normal(0.0, options_.perturbation);
      z_samples[s][f] = dz;
      perturbed[f] = input[f] + dz * scale;
      distance_sq += dz * dz;
    }
    y[s] = controller(perturbed)[target_class];
    const double kw = options_.kernel_width * options_.perturbation *
                      std::sqrt(static_cast<double>(d));
    weights[s] = std::exp(-distance_sq / (2.0 * kw * kw));
  }

  // Weighted ridge regression with intercept: minimize
  // sum_s w_s (y_s - b0 - z_s . beta)^2 + ridge ||beta||^2.
  const std::size_t dim = d + 1;  // intercept last
  std::vector<std::vector<double>> gram(dim, std::vector<double>(dim, 0.0));
  std::vector<double> rhs(dim, 0.0);
  for (std::size_t s = 0; s < options_.num_samples; ++s) {
    const double w = weights[s];
    for (std::size_t i = 0; i < d; ++i) {
      const double zi = z_samples[s][i];
      if (zi == 0.0) continue;
      for (std::size_t j = i; j < d; ++j) {
        gram[i][j] += w * zi * z_samples[s][j];
      }
      gram[i][d] += w * zi;
      rhs[i] += w * zi * y[s];
    }
    gram[d][d] += w;
    rhs[d] += w * y[s];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < i; ++j) gram[i][j] = gram[j][i];
  }
  std::vector<double> solution = solve_ridge(std::move(gram), std::move(rhs),
                                             options_.ridge);
  exp.intercept = solution[d];
  solution.resize(d);
  exp.coefficients = std::move(solution);

  // Weighted R^2 of the fit on the neighbourhood.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double weighted_mean = 0.0;
  double weight_total = 0.0;
  for (std::size_t s = 0; s < options_.num_samples; ++s) {
    weighted_mean += weights[s] * y[s];
    weight_total += weights[s];
  }
  weighted_mean /= std::max(1e-12, weight_total);
  for (std::size_t s = 0; s < options_.num_samples; ++s) {
    double prediction = exp.intercept;
    for (std::size_t f = 0; f < d; ++f) {
      prediction += exp.coefficients[f] * z_samples[s][f];
    }
    ss_res += weights[s] * (y[s] - prediction) * (y[s] - prediction);
    ss_tot += weights[s] * (y[s] - weighted_mean) * (y[s] - weighted_mean);
  }
  exp.local_fit = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return exp;
}

std::vector<std::size_t> LimeExplainer::Explanation::top_features(std::size_t k) const {
  std::vector<double> magnitude(coefficients.size());
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    magnitude[i] = std::abs(coefficients[i]);
  }
  return common::top_k_indices(magnitude, k);
}

std::string LimeExplainer::Explanation::format(
    const std::vector<std::string>& feature_names, std::size_t top_k) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t f : top_features(top_k)) {
    if (!first) os << "; ";
    first = false;
    const std::string name =
        f < feature_names.size() ? feature_names[f] : "f" + std::to_string(f);
    os << name << " (" << (coefficients[f] >= 0 ? "+" : "")
       << common::format_double(coefficients[f], 3) << ")";
  }
  return os.str();
}

}  // namespace agua::baselines
