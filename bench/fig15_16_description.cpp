// Figs. 15/16 (Appendix): the structured input-description artifact. The
// paper shows the LLM prompt template (Fig. 15) and a generated description
// (Fig. 16) for an example ABR state. This bench emits the reproduction's
// equivalents: the deterministic template description of the motivating
// state, the alternate "human annotator" voice, and a noisy re-query — the
// three description variants the validation and robustness experiments use.
#include <cstdio>

#include "abr/describe.hpp"
#include "abr/env.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"

int main() {
  using namespace agua;
  bench::print_header("Figures 15/16", "Structured input descriptions (Appendix)");

  const abr::AbrDescriber describer;
  const std::vector<double> state = abr::AbrEnv::motivating_state();

  std::printf("\n--- deterministic description (the Fig. 16 analogue) ---\n%s\n",
              describer.describe(state).c_str());

  text::DescriberOptions human;
  human.human_style = true;
  std::printf("\n--- human-annotator voice (Fig. 14's comparison basis) ---\n%s\n",
              describer.describe(state, human).c_str());

  common::Rng rng(1601);
  text::DescriberOptions noisy;
  noisy.temperature = 0.7;
  noisy.rng = &rng;
  std::printf("\n--- one noisy re-query (Fig. 12a's variability axis) ---\n%s\n",
              describer.describe(state, noisy).c_str());

  std::printf(
      "\nNote: the template structure (initial/middle/end patterns per feature\n"
      "group, overall trend, concept correlation) mirrors the paper's Fig. 15\n"
      "fill-in-the-blank prompt; see DESIGN.md for the substitution rationale.\n");
  return 0;
}
