#include "core/checkpoint.hpp"

#include <sstream>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"

namespace agua::core {
namespace {

constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::uint32_t kSectionCheckpoint = 16;

// Far above any stage in this codebase (a 2-layer MLP has 4 parameters);
// bounds allocations when decoding a corrupt count that slipped past the CRC
// (i.e. a hand-crafted file).
constexpr std::uint64_t kMaxParams = 1024;

void save_body(common::BinaryWriter& w, const TrainCheckpoint& ckpt) {
  w.write_u32(ckpt.stage);
  w.write_u64(ckpt.next_epoch);
  w.write_u64(ckpt.total_epochs);
  w.write_double(ckpt.last_epoch_loss);
  w.write_double(ckpt.learning_rate);
  w.write_u64(ckpt.nonfinite_total);
  for (std::uint64_t s : ckpt.rng.s) w.write_u64(s);
  w.write_u32(ckpt.rng.has_cached_normal ? 1 : 0);
  w.write_double(ckpt.rng.cached_normal);
  w.write_u64(ckpt.params.size());
  for (const nn::Matrix& m : ckpt.params) m.save(w);
  w.write_u64(ckpt.velocity.size());
  for (const nn::Matrix& m : ckpt.velocity) m.save(w);
}

std::optional<TrainCheckpoint> load_body(common::BinaryReader& r) {
  TrainCheckpoint ckpt;
  ckpt.stage = r.read_u32();
  ckpt.next_epoch = r.read_u64();
  ckpt.total_epochs = r.read_u64();
  ckpt.last_epoch_loss = r.read_double();
  ckpt.learning_rate = r.read_double();
  ckpt.nonfinite_total = r.read_u64();
  for (std::uint64_t& s : ckpt.rng.s) s = r.read_u64();
  ckpt.rng.has_cached_normal = r.read_u32() != 0;
  ckpt.rng.cached_normal = r.read_double();
  const std::uint64_t num_params = r.read_u64();
  if (!r.ok() || num_params > kMaxParams) return std::nullopt;
  ckpt.params.reserve(num_params);
  for (std::uint64_t i = 0; i < num_params; ++i) ckpt.params.push_back(nn::Matrix::load(r));
  const std::uint64_t num_velocity = r.read_u64();
  if (!r.ok() || num_velocity > kMaxParams) return std::nullopt;
  ckpt.velocity.reserve(num_velocity);
  for (std::uint64_t i = 0; i < num_velocity; ++i)
    ckpt.velocity.push_back(nn::Matrix::load(r));
  if (!r.ok()) return std::nullopt;
  if (ckpt.velocity.size() != ckpt.params.size()) return std::nullopt;
  return ckpt;
}

}  // namespace

void save_checkpoint(common::BinaryWriter& w, const TrainCheckpoint& ckpt) {
  common::write_archive_header(w, kCheckpointVersion);
  std::ostringstream body;
  common::BinaryWriter bw(body);
  save_body(bw, ckpt);
  common::write_section(w, kSectionCheckpoint, std::move(body).str());
}

std::optional<TrainCheckpoint> load_checkpoint(common::BinaryReader& r) {
  if (common::read_archive_header(r) != kCheckpointVersion) return std::nullopt;
  std::string payload;
  if (common::read_section(r, kSectionCheckpoint, payload) != common::SectionStatus::kOk)
    return std::nullopt;
  std::istringstream body(std::move(payload));
  common::BinaryReader br(body);
  return load_body(br);
}

bool save_checkpoint_file(const std::string& path, const TrainCheckpoint& ckpt) {
  std::ostringstream buffer;
  common::BinaryWriter w(buffer);
  save_checkpoint(w, ckpt);
  if (!w.ok()) return false;
  return common::atomic_write_file(path, std::move(buffer).str(), "checkpoint.save");
}

std::optional<TrainCheckpoint> load_checkpoint_file(const std::string& path) {
  if (common::fault::fail_point("checkpoint.load.open")) return std::nullopt;
  auto bytes = common::read_file(path);
  if (!bytes) return std::nullopt;
  std::istringstream in(std::move(*bytes));
  common::BinaryReader r(in);
  return load_checkpoint(r);
}

}  // namespace agua::core
