// PolicyNetwork: the controller architecture shared by the three
// learning-enabled systems in the paper — an embedding network h(x) followed
// by a linear output head. Agua's concept mapping consumes h(x) (§3.4), so
// the embedding is a first-class output here.
//
// Supports the three training regimes used in the reproduction: supervised
// cross-entropy (LUCID / behaviour cloning), soft-target distillation, and
// REINFORCE-with-baseline policy gradients (Gelato fine-tuning, Aurora).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"

namespace agua::nn {

class PolicyNetwork {
 public:
  struct Config {
    std::size_t input_dim = 0;
    std::size_t hidden_dim = 64;
    std::size_t embed_dim = 32;
    std::size_t num_outputs = 2;
    /// Per-feature divisors applied before the network (empty = identity).
    std::vector<double> input_scales;
  };

  PolicyNetwork(Config config, common::Rng& rng);

  const Config& config() const { return config_; }

  /// Scale a raw observation by the configured input scales.
  std::vector<double> normalize(const std::vector<double>& input) const;
  Matrix normalize_batch(const Matrix& inputs) const;

  /// h(x): the controller's embedding of one observation.
  std::vector<double> embedding(const std::vector<double>& input);
  /// h(x) for a batch (rows).
  Matrix embedding_batch(const Matrix& inputs);

  /// Output logits / probabilities for one observation.
  std::vector<double> logits(const std::vector<double>& input);
  std::vector<double> output_probs(const std::vector<double>& input);

  std::size_t greedy_action(const std::vector<double>& input);
  std::size_t sample_action(const std::vector<double>& input, common::Rng& rng);

  /// One supervised epoch over shuffled mini-batches; returns mean loss.
  double train_supervised_epoch(const std::vector<std::vector<double>>& inputs,
                                const std::vector<std::size_t>& targets,
                                std::size_t batch_size, SgdOptimizer& optimizer,
                                common::Rng& rng);

  /// One REINFORCE update over a batch of (state, action, advantage).
  /// Returns the monitoring loss.
  double policy_gradient_update(const std::vector<std::vector<double>>& inputs,
                                const std::vector<std::size_t>& actions,
                                const std::vector<double>& advantages,
                                double entropy_coef, SgdOptimizer& optimizer);

  std::vector<Parameter*> parameters();

  void save(common::BinaryWriter& w) const;
  void load(common::BinaryReader& r);

 private:
  Matrix forward_logits(const Matrix& normalized);
  void backward_logits(const Matrix& grad_logits);

  Config config_;
  std::unique_ptr<Sequential> embedding_net_;
  std::unique_ptr<Linear> head_;
};

}  // namespace agua::nn
