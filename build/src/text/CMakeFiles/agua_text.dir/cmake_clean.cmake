file(REMOVE_RECURSE
  "CMakeFiles/agua_text.dir/describer.cpp.o"
  "CMakeFiles/agua_text.dir/describer.cpp.o.d"
  "CMakeFiles/agua_text.dir/embedder.cpp.o"
  "CMakeFiles/agua_text.dir/embedder.cpp.o.d"
  "CMakeFiles/agua_text.dir/similarity.cpp.o"
  "CMakeFiles/agua_text.dir/similarity.cpp.o.d"
  "CMakeFiles/agua_text.dir/tokenizer.cpp.o"
  "CMakeFiles/agua_text.dir/tokenizer.cpp.o.d"
  "libagua_text.a"
  "libagua_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agua_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
