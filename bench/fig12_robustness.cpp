// Fig. 12: robustness of Agua's pipeline at three points, for all three
// applications, measured as top-5 concept recall:
//  (a) repeated "LLM" queries on the same input (output variability),
//  (b) ~5% noise added to the input before description+embedding,
//  (c) ~5% input noise through the fully trained explainer.
// Paper: (a) and (b) above 0.8; (c) close to 0.9.
#include <cstdio>

#include "apps/abr_bundle.hpp"
#include "apps/cc_bundle.hpp"
#include "apps/ddos_bundle.hpp"
#include "apps/noise.hpp"
#include "bench/bench_util.hpp"
#include "core/explain.hpp"

namespace {

using namespace agua;

struct AppHarness {
  std::string name;
  core::Dataset* train;
  core::Dataset* test;
  core::DescribeFn describe;
  std::vector<double> scales;
  std::function<std::vector<double>(const std::vector<double>&)> embed;
  const concepts::ConceptSet* concept_set;
};

struct RobustnessResult {
  double multi_query_recall = 0.0;
  double input_noise_recall = 0.0;
  double explainer_noise_recall = 0.0;
};

RobustnessResult run_app(const AppHarness& app, std::uint64_t seed) {
  RobustnessResult result;
  core::AguaConfig config;
  config.embedder = text::closed_source_embedder_config();
  common::Rng rng(seed);
  core::AguaArtifacts agua =
      core::train_agua(*app.train, *app.concept_set, app.describe, config, rng);

  const std::size_t probes = 15;
  const std::size_t repeats = 5;
  common::Rng noise_rng(seed ^ 0xF00D);

  // (a) Repeated noisy "LLM" queries: recall of the overall top-5 concepts in
  // each individual query's top-5 (per §5.3).
  {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t p = 0; p < probes; ++p) {
      const auto& input = app.test->samples[p].input;
      // Collect intensity vectors across repeated queries.
      std::vector<std::vector<double>> sims_per_query;
      for (std::size_t r = 0; r < repeats; ++r) {
        text::DescriberOptions opts;
        opts.temperature = 0.7;
        opts.rng = &noise_rng;
        sims_per_query.push_back(agua.labeler->similarities(app.describe(input, opts)));
      }
      std::vector<double> overall(app.concept_set->size(), 0.0);
      for (const auto& sims : sims_per_query) {
        for (std::size_t c = 0; c < sims.size(); ++c) overall[c] += sims[c];
      }
      const auto overall_top = common::top_k_indices(overall, 5);
      for (const auto& sims : sims_per_query) {
        total += common::top_k_recall(overall_top, common::top_k_indices(sims, 5));
        ++count;
      }
    }
    result.multi_query_recall = total / static_cast<double>(count);
  }

  // (b) Input noise before description: baseline top-5 vs noisy-sample top-5.
  {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t p = 0; p < probes; ++p) {
      const auto& input = app.test->samples[p].input;
      const auto baseline_top = common::top_k_indices(
          agua.labeler->similarities(app.describe(input, text::DescriberOptions{})), 5);
      for (std::size_t r = 0; r < repeats; ++r) {
        const auto noisy = apps::add_relative_noise(input, app.scales, 0.02, noise_rng);
        const auto noisy_top = common::top_k_indices(
            agua.labeler->similarities(app.describe(noisy, text::DescriberOptions{})), 5);
        total += common::top_k_recall(baseline_top, noisy_top);
        ++count;
      }
    }
    result.input_noise_recall = total / static_cast<double>(count);
  }

  // (c) Input noise through the trained explainer.
  {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t p = 0; p < probes; ++p) {
      const auto& sample = app.test->samples[p];
      const auto baseline =
          core::explain_factual(*agua.model, sample.embedding).top_concepts(5);
      for (std::size_t r = 0; r < repeats; ++r) {
        const auto noisy = apps::add_relative_noise(sample.input, app.scales, 0.02,
                                                    noise_rng);
        const auto noisy_exp = core::explain_factual(*agua.model, app.embed(noisy));
        total += common::top_k_recall(baseline, noisy_exp.top_concepts(5));
        ++count;
      }
    }
    result.explainer_noise_recall = total / static_cast<double>(count);
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header("Figure 12", "Robustness of Agua's pipeline (top-5 recall)");

  apps::AbrBundle abr_bundle = apps::make_abr_bundle(11);
  apps::CcBundle cc_bundle = apps::make_cc_bundle(12);
  apps::DdosBundle ddos_bundle = apps::make_ddos_bundle(13);

  const AppHarness harnesses[] = {
      {"ABR", &abr_bundle.train, &abr_bundle.test, abr_bundle.describe_fn(),
       abr::AbrEnv::feature_scales(),
       [&](const std::vector<double>& x) { return abr_bundle.controller->embedding(x); },
       &abr_bundle.describer.concept_set()},
      {"CC", &cc_bundle.train, &cc_bundle.test, cc_bundle.describe_fn(),
       [&] {
         common::Rng probe_rng(1);
         return cc::CcEnv(cc_bundle.variant.env, probe_rng).feature_scales();
       }(),
       [&](const std::vector<double>& x) { return cc_bundle.controller->embedding(x); },
       &cc_bundle.describer->concept_set()},
      {"DDoS", &ddos_bundle.train, &ddos_bundle.test, ddos_bundle.describe_fn(),
       ddos::feature_scales(),
       [&](const std::vector<double>& x) { return ddos_bundle.controller->embedding(x); },
       &ddos_bundle.describer.concept_set()},
  };

  common::TablePrinter table({"application", "(a) multi-query", "(b) input noise",
                              "(c) explainer noise"});
  std::uint64_t seed = 1101;
  for (const AppHarness& app : harnesses) {
    const RobustnessResult r = run_app(app, seed++);
    table.add_row({app.name, agua::common::format_double(r.multi_query_recall),
                   agua::common::format_double(r.input_noise_recall),
                   agua::common::format_double(r.explainer_noise_recall)});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nPaper targets: (a) > 0.8, (b) > 0.8, (c) ~ 0.9 across applications.\n");
  return 0;
}
