#include "trustee/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <sstream>

namespace agua::trustee {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

std::size_t majority(const std::vector<std::size_t>& counts) {
  return static_cast<std::size_t>(
      std::distance(counts.begin(), std::max_element(counts.begin(), counts.end())));
}

}  // namespace

void DecisionTree::fit(const std::vector<std::vector<double>>& features,
                       const std::vector<std::size_t>& labels, std::size_t num_classes) {
  fit(features, labels, num_classes, Options());
}

void DecisionTree::fit(const std::vector<std::vector<double>>& features,
                       const std::vector<std::size_t>& labels, std::size_t num_classes,
                       const Options& options) {
  nodes_.clear();
  num_classes_ = num_classes;
  if (features.empty()) return;
  std::vector<std::size_t> indices(features.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  build_node(features, labels, indices, 0, options);
}

std::size_t DecisionTree::build_node(const std::vector<std::vector<double>>& features,
                                     const std::vector<std::size_t>& labels,
                                     std::vector<std::size_t>& indices, std::size_t depth,
                                     const Options& options) {
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();
  {
    TreeNode& node = nodes_[node_index];
    node.sample_count = indices.size();
    node.class_counts.assign(num_classes_, 0);
    for (std::size_t i : indices) ++node.class_counts[labels[i]];
    node.predicted_class = majority(node.class_counts);
  }

  const double parent_impurity = gini(nodes_[node_index].class_counts, indices.size());
  const bool pure = parent_impurity <= 1e-12;
  if (pure || depth >= options.max_depth || indices.size() < options.min_samples_split) {
    return node_index;
  }

  const std::size_t num_features = features[indices.front()].size();
  double best_gain = options.min_impurity_decrease;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  std::vector<std::pair<double, std::size_t>> column(indices.size());
  for (std::size_t f = 0; f < num_features; ++f) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      column[i] = {features[indices[i]][f], labels[indices[i]]};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;

    // Candidate thresholds: midpoints between distinct adjacent values,
    // optionally subsampled for speed on large nodes.
    std::vector<std::size_t> left_counts(num_classes_, 0);
    std::vector<std::size_t> right_counts = nodes_[node_index].class_counts;
    const std::size_t n = column.size();
    const std::size_t stride =
        options.max_thresholds > 0 && n > options.max_thresholds
            ? n / options.max_thresholds
            : 1;
    std::size_t since_last_eval = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const std::size_t cls = column[i].second;
      ++left_counts[cls];
      --right_counts[cls];
      ++since_last_eval;
      if (column[i].first == column[i + 1].first) continue;
      if (since_last_eval < stride) continue;
      since_last_eval = 0;
      const std::size_t n_left = i + 1;
      const std::size_t n_right = n - n_left;
      if (n_left < options.min_samples_leaf || n_right < options.min_samples_leaf) continue;
      const double weighted =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(n);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        found = true;
      }
    }
  }

  if (!found) return node_index;

  std::vector<std::size_t> left_indices;
  std::vector<std::size_t> right_indices;
  for (std::size_t i : indices) {
    if (features[i][best_feature] <= best_threshold) {
      left_indices.push_back(i);
    } else {
      right_indices.push_back(i);
    }
  }
  if (left_indices.empty() || right_indices.empty()) return node_index;

  // Free the parent's index memory before recursing.
  indices.clear();
  indices.shrink_to_fit();

  const std::size_t left_child = build_node(features, labels, left_indices, depth + 1, options);
  const std::size_t right_child =
      build_node(features, labels, right_indices, depth + 1, options);
  TreeNode& node = nodes_[node_index];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = static_cast<std::ptrdiff_t>(left_child);
  node.right = static_cast<std::ptrdiff_t>(right_child);
  return node_index;
}

std::size_t DecisionTree::predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return 0;
  std::size_t node = 0;
  while (!nodes_[node].is_leaf) {
    node = features[nodes_[node].feature] <= nodes_[node].threshold
               ? static_cast<std::size_t>(nodes_[node].left)
               : static_cast<std::size_t>(nodes_[node].right);
  }
  return nodes_[node].predicted_class;
}

std::vector<std::size_t> DecisionTree::predict_batch(
    const std::vector<std::vector<double>>& features) const {
  std::vector<std::size_t> out;
  out.reserve(features.size());
  for (const auto& row : features) out.push_back(predict(row));
  return out;
}

std::vector<DecisionStep> DecisionTree::decision_path(
    const std::vector<double>& features) const {
  std::vector<DecisionStep> path;
  if (nodes_.empty()) return path;
  std::size_t node = 0;
  while (!nodes_[node].is_leaf) {
    DecisionStep step;
    step.feature = nodes_[node].feature;
    step.threshold = nodes_[node].threshold;
    step.went_left = features[step.feature] <= step.threshold;
    path.push_back(step);
    node = step.went_left ? static_cast<std::size_t>(nodes_[node].left)
                          : static_cast<std::size_t>(nodes_[node].right);
  }
  return path;
}

std::size_t DecisionTree::leaf_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node.is_leaf) ++count;
  }
  return count;
}

std::size_t DecisionTree::depth_of(std::ptrdiff_t node) const {
  if (node < 0) return 0;
  const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
  if (n.is_leaf) return 0;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

std::size_t DecisionTree::depth() const { return nodes_.empty() ? 0 : depth_of(0); }

DecisionTree DecisionTree::pruned_top_k(std::size_t k) const {
  DecisionTree pruned = *this;
  if (nodes_.empty() || k == 0) return pruned;

  // Rank leaves by training-sample coverage; keep the top-k heaviest.
  std::vector<std::pair<std::size_t, std::size_t>> leaves;  // (count, index)
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf) leaves.emplace_back(nodes_[i].sample_count, i);
  }
  std::sort(leaves.rbegin(), leaves.rend());
  if (leaves.size() <= k) return pruned;

  std::vector<bool> keep(nodes_.size(), false);
  // Mark the kept leaves and every ancestor on their root paths.
  std::vector<std::ptrdiff_t> parent(nodes_.size(), -1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf) {
      parent[static_cast<std::size_t>(nodes_[i].left)] = static_cast<std::ptrdiff_t>(i);
      parent[static_cast<std::size_t>(nodes_[i].right)] = static_cast<std::ptrdiff_t>(i);
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    std::ptrdiff_t node = static_cast<std::ptrdiff_t>(leaves[j].second);
    while (node >= 0 && !keep[static_cast<std::size_t>(node)]) {
      keep[static_cast<std::size_t>(node)] = true;
      node = parent[static_cast<std::size_t>(node)];
    }
  }
  // Collapse unkept subtrees into majority-class leaves, then compact the
  // node array so node_count() reflects the pruned structure.
  std::vector<TreeNode> collapsed = nodes_;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (keep[i] && !collapsed[i].is_leaf) {
      const bool left_kept = keep[static_cast<std::size_t>(collapsed[i].left)];
      const bool right_kept = keep[static_cast<std::size_t>(collapsed[i].right)];
      if (!left_kept && !right_kept) {
        collapsed[i].is_leaf = true;
      } else {
        // An unkept child collapses to a leaf below (handled when visiting it).
        keep[static_cast<std::size_t>(collapsed[i].left)] = true;
        if (!left_kept) collapsed[static_cast<std::size_t>(collapsed[i].left)].is_leaf = true;
        keep[static_cast<std::size_t>(collapsed[i].right)] = true;
        if (!right_kept) collapsed[static_cast<std::size_t>(collapsed[i].right)].is_leaf = true;
      }
    }
  }
  // Compact: breadth-first copy of reachable kept nodes.
  std::vector<TreeNode> compacted;
  std::vector<std::ptrdiff_t> remap(collapsed.size(), -1);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  remap[0] = 0;
  compacted.push_back(collapsed[0]);
  while (!frontier.empty()) {
    const std::size_t old_index = frontier.front();
    frontier.pop();
    const TreeNode& old_node = collapsed[old_index];
    const std::size_t new_index = static_cast<std::size_t>(remap[old_index]);
    if (old_node.is_leaf) {
      compacted[new_index].is_leaf = true;
      compacted[new_index].left = -1;
      compacted[new_index].right = -1;
      continue;
    }
    for (const std::ptrdiff_t child : {old_node.left, old_node.right}) {
      remap[static_cast<std::size_t>(child)] =
          static_cast<std::ptrdiff_t>(compacted.size());
      compacted.push_back(collapsed[static_cast<std::size_t>(child)]);
      frontier.push(static_cast<std::size_t>(child));
    }
    compacted[new_index].left = remap[static_cast<std::size_t>(old_node.left)];
    compacted[new_index].right = remap[static_cast<std::size_t>(old_node.right)];
  }
  pruned.nodes_ = std::move(compacted);
  return pruned;
}

void DecisionTree::save(common::BinaryWriter& w) const {
  w.write_u64(num_classes_);
  w.write_u64(nodes_.size());
  for (const TreeNode& node : nodes_) {
    w.write_u32(node.is_leaf ? 1 : 0);
    w.write_u64(node.feature);
    w.write_double(node.threshold);
    w.write_u64(static_cast<std::uint64_t>(node.left + 1));   // -1 -> 0
    w.write_u64(static_cast<std::uint64_t>(node.right + 1));
    w.write_u64(node.predicted_class);
    w.write_u64(node.sample_count);
  }
}

DecisionTree DecisionTree::load(common::BinaryReader& r) {
  DecisionTree tree;
  tree.num_classes_ = r.read_u64();
  const std::uint64_t count = r.read_u64();
  if (!r.ok() || count > (1ULL << 24)) return DecisionTree();
  tree.nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TreeNode node;
    node.is_leaf = r.read_u32() != 0;
    node.feature = r.read_u64();
    node.threshold = r.read_double();
    node.left = static_cast<std::ptrdiff_t>(r.read_u64()) - 1;
    node.right = static_cast<std::ptrdiff_t>(r.read_u64()) - 1;
    node.predicted_class = r.read_u64();
    node.sample_count = r.read_u64();
    tree.nodes_.push_back(node);
  }
  if (!r.ok()) return DecisionTree();
  // Structural sanity: children must point inside the array.
  for (const TreeNode& node : tree.nodes_) {
    if (!node.is_leaf &&
        (node.left < 0 || node.right < 0 ||
         node.left >= static_cast<std::ptrdiff_t>(tree.nodes_.size()) ||
         node.right >= static_cast<std::ptrdiff_t>(tree.nodes_.size()))) {
      return DecisionTree();
    }
  }
  return tree;
}

std::string DecisionTree::format_path(const std::vector<DecisionStep>& path,
                                      const std::vector<std::string>& feature_names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) os << "; ";
    const std::string name = path[i].feature < feature_names.size()
                                 ? feature_names[path[i].feature]
                                 : "f" + std::to_string(path[i].feature);
    os << name << (path[i].went_left ? " <= " : " > ");
    os.setf(std::ios::fixed);
    os.precision(3);
    os << path[i].threshold;
  }
  return os.str();
}

}  // namespace agua::trustee
