#include "core/output_mapping.hpp"

#include <algorithm>

#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "core/train_guard.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "obs/parallel.hpp"

namespace agua::core {
namespace {

// Same fixed chunk width as ConceptMapping::train — see the determinism
// contract in DESIGN.md §7.
constexpr std::size_t kGradChunkRows = 16;

}  // namespace

OutputMapping::OutputMapping(Config config, common::Rng& rng) : config_(config) {
  layer_ = std::make_unique<nn::Linear>(config_.concept_dim, config_.num_outputs, rng);
}

double OutputMapping::train(const nn::Matrix& concept_probs, const nn::Matrix& target_probs,
                            common::Rng& rng) {
  nn::SgdOptimizer::Options opt;
  opt.learning_rate = config_.learning_rate;
  opt.momentum = 0.0;
  opt.gradient_clip = 5.0;
  nn::SgdOptimizer optimizer(layer_->parameters(), opt);
  // The live rate: backed off by the non-finite guard, restored on recovery,
  // and carried through checkpoints.
  double& lr = optimizer.options().learning_rate;
  NonFiniteGuard guard("output", config_.learning_rate);

  // Per-worker layer replicas (Linear caches its forward input), re-synced to
  // the master weights once per step. See ConceptMapping::train for the
  // data-parallel scheme; gradients reduce in fixed chunk order.
  common::ThreadPool& pool = common::default_pool();
  const std::vector<nn::Parameter*> master_params = layer_->parameters();
  std::vector<std::unique_ptr<nn::Linear>> replicas(pool.thread_count());
  std::vector<std::vector<nn::Parameter*>> replica_params(replicas.size());
  {
    common::Rng scratch(0);  // replica init weights are overwritten by syncs
    for (std::size_t w = 0; w < replicas.size(); ++w) {
      replicas[w] =
          std::make_unique<nn::Linear>(config_.concept_dim, config_.num_outputs, scratch);
      replica_params[w] = replicas[w]->parameters();
    }
  }
  std::vector<std::uint64_t> replica_step(replicas.size(), 0);
  std::uint64_t step = 0;
  std::vector<double> chunk_losses;
  std::vector<std::vector<nn::Matrix>> chunk_grads;  // [chunk][param]

  double last_epoch_loss = 0.0;
  std::size_t start_epoch = 0;
  if (config_.resume != nullptr && config_.resume->stage == kCheckpointStageOutput &&
      config_.resume->params.size() == master_params.size()) {
    // Restore the epoch-boundary snapshot — see ConceptMapping::train.
    const TrainCheckpoint& ckpt = *config_.resume;
    for (std::size_t p = 0; p < master_params.size(); ++p) {
      master_params[p]->value = ckpt.params[p];
    }
    optimizer.set_velocity(ckpt.velocity);
    rng.set_state(ckpt.rng);
    lr = ckpt.learning_rate;
    guard.set_total(ckpt.nonfinite_total);
    last_epoch_loss = ckpt.last_epoch_loss;
    start_epoch = static_cast<std::size_t>(ckpt.next_epoch);
  }
  for (std::size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    const auto order = rng.permutation(concept_probs.rows());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<std::size_t> batch_indices(order.begin() + static_cast<std::ptrdiff_t>(start),
                                             order.begin() + static_cast<std::ptrdiff_t>(end));
      const nn::Matrix batch = concept_probs.gather_rows(batch_indices);
      const nn::Matrix targets = target_probs.gather_rows(batch_indices);
      const std::size_t batch_rows = batch.rows();
      const std::size_t num_chunks = (batch_rows + kGradChunkRows - 1) / kGradChunkRows;
      ++step;
      chunk_losses.assign(num_chunks, 0.0);
      chunk_grads.resize(num_chunks);

      obs::parallel_for(
          pool, "agua.pool.train_output", num_chunks,
          [&](std::size_t chunk, std::size_t worker) {
            if (replica_step[worker] != step) {
              for (std::size_t p = 0; p < master_params.size(); ++p) {
                replica_params[worker][p]->value = master_params[p]->value;
              }
              replica_step[worker] = step;
            }
            const std::size_t row0 = chunk * kGradChunkRows;
            const std::size_t row1 = std::min(batch_rows, row0 + kGradChunkRows);
            nn::Linear& layer = *replicas[worker];
            layer.zero_grad();
            const nn::Matrix out = layer.forward(batch.slice_rows(row0, row1));
            nn::Matrix grad;
            chunk_losses[chunk] = nn::soft_cross_entropy_loss(
                out, targets.slice_rows(row0, row1), grad, batch_rows);
            layer.backward(grad);
            std::vector<nn::Matrix>& sink = chunk_grads[chunk];
            sink.resize(master_params.size());
            for (std::size_t p = 0; p < master_params.size(); ++p) {
              sink[p] = replica_params[worker][p]->grad;
            }
          });

      optimizer.zero_grad();
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        for (std::size_t p = 0; p < master_params.size(); ++p) {
          master_params[p]->grad.add(chunk_grads[chunk][p]);
        }
      }
      // Fault sites in the serial section, schedule-independent (§8).
      if (common::fault::armed()) {
        chunk_losses[0] = common::fault::poison_point("train.output.loss", chunk_losses[0]);
        if (!master_params.empty() && !master_params[0]->grad.empty()) {
          double& g0 = master_params[0]->grad.data()[0];
          g0 = common::fault::poison_point("train.output.grad", g0);
        }
      }
      if (!guard.admit(chunk_losses, master_params, lr, epoch)) continue;  // skip step
      for (double chunk_loss : chunk_losses) epoch_loss += chunk_loss;
      // ElasticNet subgradient on the master weights, once per step, exactly
      // as the serial recipe applied it.
      nn::apply_elastic_net(layer_->parameters(), config_.elastic_alpha,
                            config_.elastic_coef);
      optimizer.step();
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (config_.observer) {
      // Telemetry only — reads the master state the epoch just produced.
      TrainEpochStats stats;
      stats.epoch = epoch;
      stats.epochs = config_.epochs;
      stats.loss = last_epoch_loss;
      stats.grad_norm = params_l2_norm(master_params, /*grads=*/true);
      stats.weight_norm = params_l2_norm(master_params, /*grads=*/false);
      stats.learning_rate = lr;
      config_.observer(stats);
    }
    if (config_.checkpoint_every > 0 && config_.checkpoint_sink &&
        ((epoch + 1) % config_.checkpoint_every == 0 || epoch + 1 == config_.epochs)) {
      TrainCheckpoint ckpt;
      ckpt.stage = kCheckpointStageOutput;
      ckpt.next_epoch = epoch + 1;
      ckpt.total_epochs = config_.epochs;
      ckpt.last_epoch_loss = last_epoch_loss;
      ckpt.learning_rate = lr;
      ckpt.nonfinite_total = guard.total();
      ckpt.rng = rng.state();
      ckpt.params.reserve(master_params.size());
      for (const nn::Parameter* p : master_params) ckpt.params.push_back(p->value);
      ckpt.velocity = optimizer.velocity();
      config_.checkpoint_sink(ckpt);
    }
  }
  return last_epoch_loss;
}

std::vector<double> OutputMapping::logits(const std::vector<double>& concept_probs) {
  return layer_->forward(nn::Matrix::row_vector(concept_probs)).row(0);
}

nn::Matrix OutputMapping::logits_batch(const nn::Matrix& concept_probs) {
  return layer_->forward(concept_probs);
}

std::vector<double> OutputMapping::class_weights(std::size_t output_class) const {
  // Linear stores W as (in x out); class i's weights are column i.
  const nn::Matrix& weights = layer_->weight().value;
  std::vector<double> out(weights.rows());
  for (std::size_t r = 0; r < weights.rows(); ++r) out[r] = weights.at(r, output_class);
  return out;
}

double OutputMapping::class_bias(std::size_t output_class) const {
  return layer_->bias().value.at(0, output_class);
}

void OutputMapping::save(common::BinaryWriter& w) const {
  w.write_u64(config_.concept_dim);
  w.write_u64(config_.num_outputs);
  w.write_double(config_.elastic_alpha);
  layer_->save(w);
}

OutputMapping OutputMapping::load(common::BinaryReader& r) {
  Config config;
  config.concept_dim = r.read_u64();
  config.num_outputs = r.read_u64();
  config.elastic_alpha = r.read_double();
  common::Rng scratch(0);  // weights are overwritten by load below
  OutputMapping mapping(config, scratch);
  mapping.layer_->load(r);
  return mapping;
}

double OutputMapping::elastic_penalty() const {
  return nn::elastic_net_penalty(
      {const_cast<nn::Parameter*>(&layer_->weight()),
       const_cast<nn::Parameter*>(&layer_->bias())},
      config_.elastic_alpha);
}

}  // namespace agua::core
