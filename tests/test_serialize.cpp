#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace agua::common;

TEST(Serialize, PrimitiveRoundTrip) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.write_u32(42);
  w.write_u64(1ULL << 40);
  w.write_double(-3.25);
  w.write_string("hello agua");
  w.write_doubles({1.0, 2.0, 3.0});
  ASSERT_TRUE(w.ok());

  BinaryReader r(stream);
  EXPECT_EQ(r.read_u32(), 42u);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_DOUBLE_EQ(r.read_double(), -3.25);
  EXPECT_EQ(r.read_string(), "hello agua");
  const auto v = r.read_doubles();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_TRUE(r.ok());
}

TEST(Serialize, EmptyContainers) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.write_string("");
  w.write_doubles({});
  BinaryReader r(stream);
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.read_doubles().empty());
  EXPECT_TRUE(r.ok());
}

TEST(Serialize, ArchiveHeaderRoundTrip) {
  std::stringstream stream;
  BinaryWriter w(stream);
  write_archive_header(w, 3);
  BinaryReader r(stream);
  EXPECT_EQ(read_archive_header(r), 3u);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.write_u32(0xDEADBEEF);
  w.write_u32(1);
  BinaryReader r(stream);
  EXPECT_EQ(read_archive_header(r), 0u);
}

TEST(Serialize, CorruptLengthDoesNotAllocate) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.write_u64(~0ULL);  // absurd length prefix
  BinaryReader r(stream);
  const auto v = r.read_doubles();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, TruncatedStreamSetsFail) {
  std::stringstream stream;
  BinaryWriter w(stream);
  w.write_u32(7);
  BinaryReader r(stream);
  r.read_u32();
  r.read_u64();  // nothing left
  EXPECT_FALSE(r.ok());
}

}  // namespace
