// Stage ③ of Fig. 2, "Input Concept Embedding": embeds base concepts and
// input descriptions with a text-embedding model, measures cosine similarity
// (eq. 2), and quantizes into the k similarity classes that supervise the
// concept mapping function.
#pragma once

#include <string>
#include <vector>

#include "concepts/concept_set.hpp"
#include "text/embedder.hpp"
#include "text/similarity.hpp"

namespace agua::core {

class ConceptLabeler {
 public:
  ConceptLabeler(concepts::ConceptSet concept_set, text::TextEmbedder embedder,
                 text::SimilarityQuantizer quantizer);

  /// Fit the embedder's IDF table on the description corpus (plus concept
  /// texts) and cache concept embeddings. Optionally recalibrates the
  /// quantizer thresholds to *per-concept* corpus percentiles so every
  /// concept's similarity spans all k classes — hashed-n-gram cosine scales
  /// vary with concept text length, so a single absolute bin set would pin
  /// most concepts to one class (see DESIGN.md deviations).
  void fit(const std::vector<std::string>& descriptions, bool calibrate_quantizer);

  /// Embedding of an input description.
  std::vector<double> embed(const std::string& description) const;

  /// Cosine similarity of a description to every base concept (eq. 2, before
  /// quantization).
  std::vector<double> similarities(const std::string& description) const;
  std::vector<double> similarities_from_embedding(
      const std::vector<double>& description_embedding) const;

  /// ψ_k-quantized similarity class per concept.
  std::vector<std::size_t> levels(const std::string& description) const;
  std::vector<std::size_t> levels_from_similarities(
      const std::vector<double>& sims) const;

  const concepts::ConceptSet& concept_set() const { return concepts_; }
  const text::SimilarityQuantizer& quantizer() const { return quantizer_; }
  const text::TextEmbedder& embedder() const { return embedder_; }
  std::size_t num_levels() const { return quantizer_.num_levels(); }

 private:
  concepts::ConceptSet concepts_;
  text::TextEmbedder embedder_;
  text::SimilarityQuantizer quantizer_;
  /// Per-concept calibrated quantizers (empty = use the global quantizer).
  std::vector<text::SimilarityQuantizer> per_concept_quantizers_;
  std::vector<std::vector<double>> concept_embeddings_;
};

}  // namespace agua::core
