// Congestion-control debugging walkthrough (§5.2.3): observe throughput
// oscillations under stable conditions, read Agua's timeline of dominant
// concepts to diagnose over-reaction to perceived latency rises, then apply
// the paper's fix (longer history + average-latency feature + tuned
// training) and verify stable near-capacity operation.
#include <cstdio>

#include "apps/cc_bundle.hpp"
#include "cc/teacher.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/drift.hpp"

int main() {
  using namespace agua;

  std::printf("%s", common::section("Symptom: oscillation on a steady link").c_str());
  apps::CcBundle bundle = apps::make_cc_bundle(/*seed=*/12);
  common::Rng roll_rng(41);
  const auto samples = cc::rollout(*bundle.controller, bundle.variant.env,
                                   cc::LinkPattern::kSteady, roll_rng);
  std::vector<double> utilization;
  for (std::size_t i = 50; i < samples.size(); ++i) {
    utilization.push_back(samples[i].throughput_mbps / samples[i].capacity_mbps);
  }
  std::printf("mean utilization %.3f, std %.3f  <- the operator's complaint\n",
              common::mean(utilization), common::stddev(utilization));

  std::printf("%s", common::section("Diagnosis: Agua's concept timeline").c_str());
  core::AguaConfig config;
  config.embedder = text::closed_source_embedder_config();
  common::Rng rng(42);
  core::AguaArtifacts agua = core::train_agua(bundle.train, bundle.describer->concept_set(),
                                              bundle.describe_fn(), config, rng);
  // Count how often each concept dominates across 20-MI windows.
  const std::size_t window = 20;
  std::vector<core::TraceEmbeddings> windows;
  for (std::size_t start = 0; start + window <= samples.size(); start += window) {
    core::TraceEmbeddings w;
    for (std::size_t i = start; i < start + window; ++i) {
      w.push_back(bundle.controller->embedding(samples[i].observation));
    }
    windows.push_back(std::move(w));
  }
  const core::DriftReport norm = core::detect_concept_drift(*agua.model, windows, windows, 1);
  std::vector<std::size_t> counts(agua.model->num_concepts(), 0);
  for (const auto& w : windows) ++counts[core::tag_trace(*agua.model, w, norm, 1).front()];
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) {
      std::printf("  %2zu windows dominated by: %s\n", counts[c],
                  agua.model->concept_set().at(c).name.c_str());
    }
  }
  std::printf(
      "-> the controller keeps perceiving latency swings and throttles, even\n"
      "   though the link is steady (distorted latency perception).\n");

  std::printf("%s", common::section("Fix: richer latency context + retrain").c_str());
  cc::ControllerVariant debugged = cc::debugged_variant();
  cc::CcController corrected(12, debugged.env);
  cc::CcTeacher::Options gentle;
  gentle.gradient_gain = 0.2;
  gentle.probe_gain = 0.8;
  gentle.loss_gain = 6.0;
  gentle.ratio_target = 1.10;
  gentle.hold_deadband = 0.08;
  gentle.instantaneous_weight = 0.85;
  gentle.max_step_up = 1.08;
  gentle.max_step_down = 0.8;
  common::Rng train_rng(43);
  cc::train_behavior_cloning(corrected, cc::CcTeacher(gentle), debugged.env,
                             {cc::LinkPattern::kSteady, cc::LinkPattern::kStepChanges,
                              cc::LinkPattern::kBurstyCross},
                             12, 15, 0.03, train_rng);
  common::Rng verify_rng(41);
  const auto fixed_samples =
      cc::rollout(corrected, debugged.env, cc::LinkPattern::kSteady, verify_rng);
  std::vector<double> fixed_utilization;
  for (std::size_t i = 50; i < fixed_samples.size(); ++i) {
    fixed_utilization.push_back(fixed_samples[i].throughput_mbps /
                                fixed_samples[i].capacity_mbps);
  }
  std::printf("corrected controller: mean utilization %.3f, std %.3f\n",
              common::mean(fixed_utilization), common::stddev(fixed_utilization));
  std::printf("original controller:  mean utilization %.3f, std %.3f\n",
              common::mean(utilization), common::stddev(utilization));
  return 0;
}
