file(REMOVE_RECURSE
  "../bench/ablation_config"
  "../bench/ablation_config.pdb"
  "CMakeFiles/ablation_config.dir/ablation_config.cpp.o"
  "CMakeFiles/ablation_config.dir/ablation_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
