// Rule-based ABR teacher (RobustMPC/BBA-style) used to behaviour-clone the
// initial Gelato-like policy before REINFORCE fine-tuning. The teacher picks
// the highest quality whose download fits a conservative throughput estimate
// within the buffer budget, with switch damping.
#pragma once

#include <cstddef>
#include <vector>

#include "abr/env.hpp"

namespace agua::abr {

class MpcTeacher {
 public:
  struct Options {
    double safety_factor = 0.85;   ///< discount on the throughput estimate
    double buffer_reserve_s = 3.0; ///< keep at least this much buffer
    int max_step_up = 1;           ///< limit upward level jumps per decision
  };

  MpcTeacher();
  explicit MpcTeacher(Options options);

  /// Choose a quality level from the 80-dim observation.
  std::size_t act(const std::vector<double>& observation) const;

 private:
  Options options_;
};

}  // namespace agua::abr
